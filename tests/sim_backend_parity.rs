//! Backend determinism regression suite (ISSUE 7 satellite).
//!
//! The event-loop rank runtime must be a drop-in replacement for the
//! threaded one:
//!
//! * **Determinism by construction** — two event-loop runs of the same
//!   workload are bit-identical in everything: virtual clocks, the full
//!   `Stats` struct (including `bytes_copied`, `overlap_saved_ns`, phase
//!   buckets), read-back buffers, and the bytes on the PFS.
//! * **Thread parity, order-insensitive workloads** — where the threaded
//!   backend is itself deterministic (pure collectives with no file
//!   system, or a single aggregator owning the PFS), the two backends
//!   agree bit for bit on clocks and full `Stats`.
//! * **Thread parity, racy workloads** — with several aggregators racing
//!   on a shared OST clock the threaded backend's completion times depend
//!   on OS scheduling (even at zero service cost: completion is
//!   `max(ost_clock, arrival)`; see DESIGN.md "Rank runtime"), so there
//!   the comparison is on what threads do pin down: file images,
//!   read-back bytes, and the order-insensitive work counters.
//! * Phase buckets always sum to each rank's elapsed clock.

use flexio::core::{Engine, ExchangeMode, Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run_on, Backend, CostModel, Stats, XorShift64Star};
use flexio::types::Datatype;
use std::sync::Arc;

const BLOCK: u64 = 64;

fn pfs_with(cost: PfsCostModel) -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost,
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Per-rank observation: (final clock, full stats, read-back bytes).
type RankTrace = (u64, Stats, Vec<u8>);

/// One backend run of the parity workload: interleaved-block collective
/// writes then a collective read-back. Returns per-rank traces plus the
/// final file image.
#[allow(clippy::too_many_arguments)]
fn parity_run(
    backend: Backend,
    cost: PfsCostModel,
    engine: Engine,
    nprocs: usize,
    blocks: u64,
    steps: u64,
    cb_nodes: usize,
) -> (Vec<RankTrace>, Vec<u8>) {
    let pfs = pfs_with(cost);
    let pfs2 = Arc::clone(&pfs);
    let out = run_on(backend, nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            engine,
            cb_nodes: Some(cb_nodes),
            cb_buffer_size: 256, // several cycles per call
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs2, "parity", hints).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
        let len = (blocks * BLOCK) as usize;
        for s in 0..steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        }
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats(), back)
    });
    let image = read_file(&pfs, "parity");
    (out, image)
}

/// The `Stats` fields that are a pure function of the workload even when
/// OS scheduling perturbs timed-PFS service order: work done, not time
/// taken.
fn work_counters(s: &Stats) -> [u64; 10] {
    [
        s.msgs_sent,
        s.bytes_sent,
        s.pairs_processed,
        s.memcpy_bytes,
        s.bytes_copied,
        s.schedule_cache_hits,
        s.schedule_cache_misses,
        s.flatten_cache_hits,
        s.flatten_cache_misses,
        s.io_retries,
    ]
}

fn assert_phase_sums(out: &[(u64, Stats, Vec<u8>)], label: &str) {
    for (r, (now, s, _)) in out.iter().enumerate() {
        assert_eq!(
            s.phase_ns.iter().sum::<u64>(),
            *now,
            "{label}: rank {r} phase buckets must sum to its clock"
        );
    }
}

#[test]
fn pure_collectives_bit_identical_across_backends() {
    if !Backend::event_loop_supported() {
        return;
    }
    // No file system at all: the network model is order-insensitive (each
    // receive completes at max(local, avail_at) + overhead over FIFO
    // queues), so the threaded backend is fully deterministic here and
    // clocks + full Stats must match bit for bit.
    let workload = |r: &flexio::sim::Rank| {
        let p = r.nprocs();
        r.send((r.rank() + 1) % p, 1, &[r.rank() as u8; 48]);
        let got = r.recv((r.rank() + p - 1) % p, 1);
        r.charge_pairs(got.len() as u64);
        r.barrier();
        let seed = r.bcast(0, if r.rank() == 0 { vec![9; 8] } else { vec![] });
        let all = r.allgatherv(&[r.rank() as u8, seed[0]]);
        let blocks: Vec<Vec<u8>> = (0..p).map(|d| vec![(r.rank() + d) as u8; 7]).collect();
        let x = r.alltoallv(blocks);
        let g = r.gatherv(0, &x[(r.rank() + 1) % p]);
        let s = r.scatterv(0, if r.rank() == 0 { g } else { Vec::new() });
        let mut img = s;
        img.extend(all.into_iter().flatten());
        (r.now(), r.stats(), img)
    };
    for p in [2usize, 16, 64] {
        let ev = run_on(Backend::EventLoop, p, CostModel::default(), workload);
        let th = run_on(Backend::Threads, p, CostModel::default(), workload);
        assert_eq!(ev, th, "p={p}: clocks/stats/bytes diverge across backends");
    }
}

#[test]
fn event_loop_bit_identical_to_threads_on_order_insensitive_workloads() {
    if !Backend::event_loop_supported() {
        return;
    }
    // A single aggregator owns the PFS, so OST service order is its own
    // program order and the threaded backend is deterministic — full
    // bit-identity must hold for both cost models. (With several
    // aggregators racing a shared OST clock, even zero service time is
    // order-sensitive: completion is max(ost_clock, arrival).)
    let cases = [(PfsCostModel::free(), 8usize), (PfsCostModel::default(), 6)];
    let cb = 1usize;
    for engine in [Engine::Flexible, Engine::Romio] {
        for (cost, nprocs) in cases {
            let (ev, ev_img) = parity_run(Backend::EventLoop, cost, engine, nprocs, 16, 3, cb);
            let (th, th_img) = parity_run(Backend::Threads, cost, engine, nprocs, 16, 3, cb);
            assert_eq!(ev_img, th_img, "{engine:?} cb={cb}: file images diverge");
            for r in 0..nprocs {
                assert_eq!(
                    ev[r], th[r],
                    "{engine:?} cb={cb}: rank {r} (clock, full Stats, read-back) diverge"
                );
            }
            assert_phase_sums(&ev, "event loop");
            assert_phase_sums(&th, "threads");
        }
    }
}

#[test]
fn event_loop_deterministic_at_paper_scale() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Timed PFS, several racing aggregators, both engines, two exchange
    // modes folded in via defaults — the configuration where the threaded
    // backend is *not* clock-deterministic. The event loop must be.
    for engine in [Engine::Flexible, Engine::Romio] {
        let (a, a_img) =
            parity_run(Backend::EventLoop, PfsCostModel::default(), engine, 16, 24, 3, 4);
        let (b, b_img) =
            parity_run(Backend::EventLoop, PfsCostModel::default(), engine, 16, 24, 3, 4);
        assert_eq!(a_img, b_img, "{engine:?}: event-loop file images diverge across runs");
        for r in 0..16 {
            assert_eq!(
                a[r], b[r],
                "{engine:?}: rank {r} not bit-identical across event-loop runs"
            );
        }
        assert_phase_sums(&a, "event loop");

        // Threads pin down the bytes and the work, not the clocks.
        let (th, th_img) =
            parity_run(Backend::Threads, PfsCostModel::default(), engine, 16, 24, 3, 4);
        assert_eq!(a_img, th_img, "{engine:?}: threaded file image diverges");
        for r in 0..16 {
            assert_eq!(a[r].2, th[r].2, "{engine:?}: rank {r} read-back diverges");
            assert_eq!(
                work_counters(&a[r].1),
                work_counters(&th[r].1),
                "{engine:?}: rank {r} work counters diverge"
            );
        }
        assert_phase_sums(&th, "threads");
    }
}

#[test]
fn exchange_modes_identical_across_backends() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Both exchange flavours, single aggregator: full bit-identity.
    for exchange in [ExchangeMode::Nonblocking, ExchangeMode::Alltoallw] {
        let run_one = |backend: Backend| {
            let pfs = pfs_with(PfsCostModel::free());
            let pfs2 = Arc::clone(&pfs);
            let out = run_on(backend, 8, CostModel::default(), move |rank| {
                let hints = Hints {
                    exchange,
                    cb_nodes: Some(1),
                    cb_buffer_size: 256,
                    ..Hints::default()
                };
                let mut f = MpiFile::open(rank, &pfs2, "xmode", hints).unwrap();
                let block = Datatype::bytes(BLOCK);
                let ftype = Datatype::resized(0, 8 * BLOCK, block);
                f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
                let data = step_data(rank.rank(), 0, (12 * BLOCK) as usize);
                f.write_all(&data, &Datatype::bytes(data.len() as u64), 1).unwrap();
                f.close().unwrap();
                (rank.now(), rank.stats())
            });
            (out, read_file(&pfs, "xmode"))
        };
        let (ev, ev_img) = run_one(Backend::EventLoop);
        let (th, th_img) = run_one(Backend::Threads);
        assert_eq!(ev_img, th_img, "{exchange:?}: images diverge");
        assert_eq!(ev, th, "{exchange:?}: clocks/stats diverge");
    }
}
