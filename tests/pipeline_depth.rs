//! Pipeline-depth tests: whatever depth the engine runs at — serial,
//! classic double buffering, deep fixed pipelines, or adaptive — the bytes
//! on disk and the deterministic work counters must be identical; only
//! virtual time may move. Property-tested over random filetypes, world
//! sizes, aggregator counts, and depths against the depth-1 oracle, plus
//! charge-sequence fixtures pinning `flexio_pipeline_depth=2` to the PR 2
//! double-buffered engine and `=1` to the serial engine, number for
//! number.

use flexio::core::{hints_from_info, ExchangeMode, Hints, MpiFile, PipelineDepth};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::prop::Runner;
use flexio::sim::{run, CostModel, Stats, XorShift64Star};
use flexio::types::{Datatype, Dt};
use std::sync::Arc;

fn timed_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// How each rank's filetype tiles the file in the property workload.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// Classic interleaved blocks: rank r owns bytes `[rB, (r+1)B)` of
    /// every round of `nprocs·B`.
    Tiled,
    /// Each rank's block has a hole: an indexed type writing the first
    /// half and the last quarter of its `B` bytes.
    Split,
    /// Two half-blocks a block apart (hvector), rounds of `2·nprocs·B`.
    Strided,
}

/// One randomly generated collective workload plus the depth under test.
#[derive(Debug, Clone)]
struct Workload {
    nprocs: usize,
    /// Bytes per filetype block; always a multiple of 8.
    block: u64,
    /// Filetype repetitions written per collective call.
    reps: u64,
    steps: u64,
    aggs: usize,
    cb: usize,
    exchange: ExchangeMode,
    shape: Shape,
    depth: PipelineDepth,
}

fn random_workload(rng: &mut XorShift64Star) -> Workload {
    let nprocs = 2 + (rng.next_u64() % 7) as usize; // 2..=8
    Workload {
        nprocs,
        block: 8 * (1 + rng.next_u64() % 12), // 8..=96
        reps: 4 + rng.next_u64() % 29,        // 4..=32
        steps: 1 + rng.next_u64() % 2,
        aggs: 1 + (rng.next_u64() as usize) % nprocs,
        cb: [128, 256, 512, 1024][(rng.next_u64() % 4) as usize],
        exchange: if rng.next_u64().is_multiple_of(2) {
            ExchangeMode::Nonblocking
        } else {
            ExchangeMode::Alltoallw
        },
        shape: [Shape::Tiled, Shape::Split, Shape::Strided][(rng.next_u64() % 3) as usize],
        depth: match rng.next_u64() % 6 {
            0..=4 => PipelineDepth::Fixed(2 + (rng.next_u64() % 5) as u32), // 2..=6
            _ => PipelineDepth::Auto,
        },
    }
}

/// `(displacement for rank, filetype, data bytes per repetition)`.
fn filetype(w: &Workload, rank: usize) -> (u64, Dt, u64) {
    let (b, p, r) = (w.block, w.nprocs as u64, rank as u64);
    match w.shape {
        Shape::Tiled => (r * b, Datatype::resized(0, p * b, Datatype::bytes(b)), b),
        Shape::Split => {
            let inner = Datatype::indexed(
                vec![(0, b / 2), (3 * (b as i64) / 4, b / 4)],
                Datatype::bytes(1),
            );
            (r * b, Datatype::resized(0, p * b, inner), 3 * b / 4)
        }
        Shape::Strided => {
            let inner = Datatype::hvector(2, 1, b as i64, Datatype::bytes(b / 2));
            (2 * r * b, Datatype::resized(0, 2 * p * b, inner), b)
        }
    }
}

/// Each rank's `(elapsed, stats, read-back)` after a roundtrip.
type RankOutcome = (u64, Stats, Vec<u8>);

/// Run `w` at pipeline depth `depth`: `steps` collective writes of fresh
/// data, then read the last step back. Returns the final file image and
/// each rank's outcome.
fn roundtrip(w: &Workload, depth: PipelineDepth) -> (Vec<u8>, Vec<RankOutcome>) {
    let pfs = timed_pfs();
    let hints = Hints {
        pipeline_depth: depth,
        cb_nodes: Some(w.aggs),
        cb_buffer_size: w.cb,
        exchange: w.exchange,
        ..Hints::default()
    };
    let w = w.clone();
    let inner = Arc::clone(&pfs);
    let out = run(w.nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &inner, "depth", hints.clone()).unwrap();
        let (disp, ftype, per_rep) = filetype(&w, rank.rank());
        f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
        let len = (w.reps * per_rep) as usize;
        for s in 0..w.steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        }
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats(), back)
    });
    (read_file(&pfs, "depth"), out)
}

/// The tentpole property: any depth, fixed 2..=6 or auto, is
/// indistinguishable from the serial (depth 1) oracle in everything but
/// virtual time — byte-identical file image and read-back, identical
/// overlap-exclusive counters, and phase buckets that still sum to each
/// rank's elapsed clock.
#[test]
fn any_depth_matches_serial_oracle() {
    Runner::new("any_depth_matches_serial_oracle")
        .cases(16)
        .regressions(include_str!("pipeline_depth.proptest-regressions"))
        .run(random_workload, |w| {
            let (img_d, out_d) = roundtrip(w, w.depth);
            let (img_1, out_1) = roundtrip(w, PipelineDepth::Fixed(1));
            assert_eq!(img_d, img_1, "file image diverges from the depth-1 oracle");
            for r in 0..w.nprocs {
                let (now, d, s) = (&out_d[r].0, &out_d[r].1, &out_1[r].1);
                assert_eq!(out_d[r].2, out_1[r].2, "rank {r} read-back diverges");
                assert_eq!(d.pairs_processed, s.pairs_processed, "rank {r} pairs");
                assert_eq!(d.memcpy_bytes, s.memcpy_bytes, "rank {r} copy bytes");
                assert_eq!(d.msgs_sent, s.msgs_sent, "rank {r} messages");
                assert_eq!(d.bytes_sent, s.bytes_sent, "rank {r} payload bytes");
                assert_eq!(
                    d.schedule_cache_misses, s.schedule_cache_misses,
                    "rank {r} cache misses"
                );
                assert_eq!(d.phase_ns.iter().sum::<u64>(), *now, "rank {r} phase sum");
                assert_eq!(out_1[r].1.overlap_saved_ns, 0, "oracle must not overlap");
                assert_eq!(out_1[r].1.derive_overlap_saved_ns, 0, "oracle derive overlap");
            }
        });
}

/// The workload every charge fixture below runs: the single-aggregator
/// interleaved-block pattern `results/ablation_pipeline.txt` was measured
/// with, shrunk to test scale (4 ranks, 16 blocks of 64 B, 2 writes + 1
/// read, 512 B collective buffer, timed PFS).
fn fixture_run(hints: Hints) -> Vec<(u64, Stats)> {
    let pfs = timed_pfs();
    let (nprocs, blocks, steps, block) = (4usize, 16u64, 2u64, 64u64);
    let out = run(nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "fix", hints.clone()).unwrap();
        let ftype = Datatype::resized(0, nprocs as u64 * block, Datatype::bytes(block));
        f.set_view(rank.rank() as u64 * block, &Datatype::bytes(1), &ftype).unwrap();
        let len = (blocks * block) as usize;
        for s in 0..steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        }
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats())
    });
    out
}

fn assert_fixture(got: &[(u64, Stats)], want: &[(u64, [u64; 3], u64)], label: &str) {
    for (r, ((now, s), (w_now, w_phase, w_saved))) in got.iter().zip(want).enumerate() {
        assert_eq!(*now, *w_now, "{label}: rank {r} clock");
        assert_eq!(s.phase_ns, *w_phase, "{label}: rank {r} phase buckets");
        assert_eq!(s.overlap_saved_ns, *w_saved, "{label}: rank {r} hidden ns");
        // Work counters are depth-invariant; rank 0 is the aggregator.
        let (pairs, memcpy, msgs, bytes) =
            if r == 0 { (98, 18432, 39, 3720) } else { (34, 3072, 31, 2696) };
        assert_eq!(s.pairs_processed, pairs, "{label}: rank {r} pairs");
        assert_eq!(s.memcpy_bytes, memcpy, "{label}: rank {r} copy bytes");
        assert_eq!(s.msgs_sent, msgs, "{label}: rank {r} messages");
        assert_eq!(s.bytes_sent, bytes, "{label}: rank {r} payload bytes");
        assert_eq!(s.derive_overlap_saved_ns, 0, "{label}: rank {r} derive overlap");
    }
}

/// Per-rank charge sequence of the PR 2 double-buffered engine on the
/// fixture workload, harvested from the commit that produced
/// `results/ablation_pipeline.txt` ("Pipeline buffer cycles ...").
const PR2_FIXTURE: [(u64, [u64; 3], u64); 4] = [
    (3_035_504, [20_976, 1_311_008, 1_703_520], 269_304),
    (3_039_504, [5_616, 3_033_888, 0], 0),
    (3_043_504, [5_616, 3_037_888, 0], 0),
    (2_979_504, [5_616, 2_973_888, 0], 0),
];

/// The serial engine's charge sequence on the same workload.
const SERIAL_FIXTURE: [(u64, [u64; 3], u64); 4] = [
    (3_304_808, [20_976, 1_311_008, 1_972_824], 0),
    (3_308_808, [5_616, 3_303_192, 0], 0),
    (3_312_808, [5_616, 3_307_192, 0], 0),
    (3_248_808, [5_616, 3_243_192, 0], 0),
];

#[test]
fn depth_2_replays_pr2_charge_sequence() {
    let hints = |depth| Hints {
        pipeline_depth: depth,
        cb_nodes: Some(1),
        cb_buffer_size: 512,
        // The fixtures pin the pre-zero-copy packed path's charges.
        zero_copy: false,
        ..Hints::default()
    };
    let out = fixture_run(hints(PipelineDepth::Fixed(2)));
    assert_fixture(&out, &PR2_FIXTURE, "depth 2");
}

#[test]
fn depth_1_replays_serial_charge_sequence() {
    // Depth 1 and `flexio_double_buffer disable` (whatever the depth hint
    // says) are both the serial engine, charge for charge.
    // The fixtures pin the pre-zero-copy packed path's charges.
    let base =
        Hints { cb_nodes: Some(1), cb_buffer_size: 512, zero_copy: false, ..Hints::default() };
    let out = fixture_run(Hints {
        pipeline_depth: PipelineDepth::Fixed(1),
        ..base.clone()
    });
    assert_fixture(&out, &SERIAL_FIXTURE, "depth 1");
    let out = fixture_run(Hints { double_buffer: false, ..base });
    assert_fixture(&out, &SERIAL_FIXTURE, "double_buffer off");
}

#[test]
fn depth_watermark_respects_the_cap() {
    let stats = |depth| {
        fixture_run(Hints {
            pipeline_depth: depth,
            cb_nodes: Some(1),
            cb_buffer_size: 512,
            ..Hints::default()
        })
    };
    for (depth, cap) in [(PipelineDepth::Fixed(1), 1), (PipelineDepth::Fixed(2), 2), (PipelineDepth::Fixed(4), 4)]
    {
        let out = stats(depth);
        let deepest = out.iter().map(|(_, s)| s.pipeline_depth_used).max().unwrap();
        assert!(deepest <= cap, "{depth:?} exceeded its cap: reached {deepest}");
        assert!(deepest >= 1, "{depth:?} recorded no pipeline depth at all");
    }
    // On this workload the I/O dwarfs the exchange, so auto must go
    // beyond classic double buffering on the aggregator.
    let out = stats(PipelineDepth::Auto);
    let deepest = out.iter().map(|(_, s)| s.pipeline_depth_used).max().unwrap();
    assert!(deepest > 2, "auto depth never exceeded double buffering ({deepest})");
}

#[test]
fn derive_overlap_needs_a_deep_pipeline_and_a_miss() {
    let stats = |depth| {
        fixture_run(Hints {
            pipeline_depth: depth,
            cb_nodes: Some(1),
            cb_buffer_size: 512,
            ..Hints::default()
        })
    };
    // Depths 1 and 2 must stay bit-identical to the reference engines, so
    // the derive never overlaps there (the fixtures above also pin this).
    for depth in [PipelineDepth::Fixed(1), PipelineDepth::Fixed(2)] {
        let out = stats(depth);
        assert!(out.iter().all(|(_, s)| s.derive_overlap_saved_ns == 0), "{depth:?}");
    }
    // Deep and auto pipelines hide derivation behind the first exchange
    // on a miss; replays (cache hits) have nothing left to hide, so the
    // counter stops growing after the first call of each direction.
    for depth in [PipelineDepth::Fixed(4), PipelineDepth::Auto] {
        let out = stats(depth);
        let total: u64 = out.iter().map(|(_, s)| s.derive_overlap_saved_ns).sum();
        assert!(total > 0, "{depth:?} hid no derivation time");
    }
}

#[test]
fn depth_hint_parses_and_rejects() {
    let h = hints_from_info(Hints::default(), &[("flexio_pipeline_depth", "3")]).unwrap();
    assert_eq!(h.pipeline_depth, PipelineDepth::Fixed(3));
    let h = hints_from_info(Hints::default(), &[("flexio_pipeline_depth", "auto")]).unwrap();
    assert_eq!(h.pipeline_depth, PipelineDepth::Auto);
    for bad in ["0", "-1", "deep", ""] {
        let err = hints_from_info(Hints::default(), &[("flexio_pipeline_depth", bad)])
            .expect_err(bad)
            .to_string();
        assert!(err.contains("flexio_pipeline_depth"), "undescriptive error {err:?}");
    }
    // validate_for rejects a zero depth like validate does.
    assert!(Hints { pipeline_depth: PipelineDepth::Fixed(0), ..Hints::default() }
        .validate_for(4)
        .is_err());
}
