//! Determinism harness for the sharded host-thread pool (ISSUE 10).
//!
//! The parity suite (`sim_backend_parity.rs`) checks that the pool agrees
//! with the sequential event loop on realistic collective-I/O workloads.
//! This suite attacks the pool itself:
//!
//! * **Run-twice bit-identity under perturbed host scheduling** — the
//!   pool's shard threads are started with seeded random sleeps and the
//!   shard condvars are flooded with spurious wakeups (`run_jittered`),
//!   so host-thread interleaving differs across runs and from the
//!   unjittered pool. Results must not.
//! * **The dispatch fence under spurious wakeups** — a directed
//!   regression asserting at-most-one rank segment in flight while
//!   cross-shard deliveries lower sleeping shards' published mins below
//!   the runner's key.
//! * **Degenerate partitions** — odd shard counts, more shards than
//!   ranks (the pool must clamp), and exactly one rank per shard.
//! * **Cross-shard delivery** — a directed regression for the latent
//!   assumption that message delivery runs on the receiver's host
//!   thread: with one rank per shard, *every* send crosses shards and
//!   must route through the gate inbox, never the sender-local handoff.
//! * **Crash-stop, park timers, and deadlock detection** under shards.
//! * A randomized **message-ordering property** over
//!   `flexio_sim::prop`: per-`(src, tag)` FIFO order and full
//!   bit-identity to the sequential loop across random world sizes,
//!   shard counts, fanouts, and virtual-clock skews (regressions pinned
//!   in `shard_determinism.proptest-regressions`).

use flexio::sim::{
    run_crashable_on, run_jittered, run_on, Backend, CostModel, Rank, Stats, XorShift64Star,
};

/// A workload that crosses shard boundaries in every way the runtime
/// allows: ring point-to-point, collectives, a timed park that expires,
/// and payload-dependent clock advances.
fn mixed(r: &Rank) -> (u64, Stats, Vec<u8>) {
    let p = r.nprocs();
    r.advance((r.rank() as u64 * 37) % 101);
    r.send((r.rank() + 1) % p, 7, &[r.rank() as u8; 24]);
    let got = r.recv((r.rank() + p - 1) % p, 7);
    r.charge_pairs(got.len() as u64);
    // A park deadline that always fires: nobody sends tag 99.
    let none = r.recv_timeout((r.rank() + 1) % p, 99, r.now() + 50);
    assert!(none.is_none(), "tag 99 is never sent");
    r.barrier();
    let seed = r.bcast(0, if r.rank() == 0 { vec![3; 4] } else { vec![] });
    let all = r.allgatherv(&[r.rank() as u8, seed[0], got[0]]);
    (r.now(), r.stats(), all.into_iter().flatten().collect())
}

#[test]
fn jittered_runs_are_bit_identical() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Perturb host scheduling with seeded shard-thread start jitter (up
    // to 200 us): two jittered runs, and the unjittered pool, and the
    // sequential loop must all agree bit for bit.
    for p in [5usize, 12] {
        let baseline = run_on(Backend::EventLoop, p, CostModel::default(), mixed);
        for k in [3usize, 5, 7] {
            for seed in 0..4u64 {
                let a = run_jittered(p, CostModel::default(), k, seed, 200, mixed);
                let b = run_jittered(p, CostModel::default(), k, seed ^ 0xdead, 200, mixed);
                assert_eq!(a, baseline, "p={p} k={k} seed={seed}: jittered run diverges");
                assert_eq!(b, baseline, "p={p} k={k}: second jitter seed diverges");
            }
            let plain = run_on(Backend::Sharded(k), p, CostModel::default(), mixed);
            assert_eq!(plain, baseline, "p={p} k={k}: unjittered pool diverges");
        }
    }
}

#[test]
fn degenerate_partitions_match_event_loop() {
    if !Backend::event_loop_supported() {
        return;
    }
    // (nprocs, shards): more shards than ranks (clamped), exactly one
    // rank per shard, and a lone rank under a wide pool.
    for (p, k) in [(4usize, 7usize), (3, 16), (6, 6), (1, 8)] {
        let ev = run_on(Backend::EventLoop, p, CostModel::default(), mixed);
        let sh = run_on(Backend::Sharded(k), p, CostModel::default(), mixed);
        assert_eq!(ev, sh, "p={p} k={k}: degenerate partition diverges");
    }
}

#[test]
fn cross_shard_sends_route_through_the_inbox() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Two ranks, two shards: every message crosses a shard boundary, and
    // the receiver is already parked when the sender's fiber runs on the
    // *other* host thread. A delivery that touched the receiver's local
    // heap or park table directly (the retired thread-backend assumption)
    // corrupts shard-local state; routed through the gate inbox it must
    // reproduce the sequential hand-off exactly, 64 parks deep.
    let pingpong = |r: &Rank| {
        let mut log = Vec::new();
        for step in 0..64u64 {
            if r.rank() == 0 {
                r.send(1, step, &[step as u8; 16]);
                log.extend(r.recv(1, step));
            } else {
                log.extend(r.recv(0, step));
                r.advance(13);
                r.send(0, step, &[step as u8 ^ 0xa5; 16]);
            }
        }
        (r.now(), r.stats(), log)
    };
    let ev = run_on(Backend::EventLoop, 2, CostModel::default(), pingpong);
    let sh = run_on(Backend::Sharded(2), 2, CostModel::default(), pingpong);
    assert_eq!(ev, sh, "cross-shard ping-pong diverges from the sequential loop");
}

#[test]
fn crash_stop_is_deterministic_under_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // Rank 2 crash-stops at its checkpoint; its neighbour times out on
    // the missing message and everyone else finishes normally.
    let crashes = [(2usize, 10u64)];
    let body = |r: &Rank| {
        let p = r.nprocs();
        r.advance(r.rank() as u64 * 11);
        r.maybe_crash();
        r.send((r.rank() + 1) % p, 1, &[r.rank() as u8; 8]);
        let first = r.recv_timeout((r.rank() + p - 1) % p, 1, r.now() + 500);
        (r.now(), first.map(|v| v[0]))
    };
    let ev = run_crashable_on(Backend::EventLoop, 5, CostModel::default(), &crashes, body);
    for k in [2usize, 3, 5] {
        let sh = run_crashable_on(Backend::Sharded(k), 5, CostModel::default(), &crashes, body);
        assert_eq!(ev, sh, "k={k}: crash-stop outcome diverges");
    }
    assert!(ev[2].is_none(), "the crashed rank must have no result");
}

#[test]
fn deadlock_is_detected_under_shards() {
    if !Backend::event_loop_supported() {
        return;
    }
    // All ranks park on a message nobody sends; the pool must converge on
    // the same diagnostic the sequential loop raises, not hang.
    let deadlocked = || {
        run_on(Backend::Sharded(3), 4, CostModel::default(), |r: &Rank| {
            r.recv((r.rank() + 1) % r.nprocs(), 42);
        });
    };
    let err = std::panic::catch_unwind(deadlocked).expect_err("deadlock must panic");
    let msg = err.downcast_ref::<String>().map(String::as_str).unwrap_or_default();
    assert!(
        msg.contains("deadlock") && msg.contains("4 of 4 ranks parked"),
        "unexpected deadlock diagnostic: {msg:?}"
    );
}

#[test]
fn spurious_condvar_wakeups_cannot_double_dispatch() {
    if !Backend::event_loop_supported() {
        return;
    }
    // The gate's dispatch fence must hold even when `Condvar::wait`
    // returns without a matching notify. `run_jittered` floods every
    // shard condvar with unrequested `notify_all` for the whole run, and
    // this workload manufactures the dangerous window: ranks 0..p-2 park
    // at clock 0, then the last rank's segment fans out cross-shard
    // deliveries whose wake keys sit *below* its own executing key —
    // lowering sleeping shards' published mins mid-segment. A woken
    // shard that trusts the wakeup (instead of re-checking the gate's
    // running fence) dispatches a second segment concurrently with the
    // in-flight one, which the atomic below detects directly.
    use std::sync::atomic::{AtomicUsize, Ordering};
    static IN_SEGMENT: AtomicUsize = AtomicUsize::new(0);
    fn enter() {
        let was = IN_SEGMENT.fetch_add(1, Ordering::SeqCst);
        assert_eq!(was, 0, "two rank segments executed concurrently");
    }
    fn exit() {
        IN_SEGMENT.fetch_sub(1, Ordering::SeqCst);
    }
    let (p, k) = (8usize, 4usize);
    let body = move |r: &Rank| {
        if r.rank() == p - 1 {
            r.advance(1_000_000);
            enter();
            for d in 0..p - 1 {
                r.send(d, 5, &[d as u8; 8]);
                // Hold the segment open in wall time: a wrongly woken
                // receiver shard gets every chance to dispatch while
                // this segment is still in flight.
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            exit();
        } else {
            let got = r.recv(p - 1, 5);
            enter();
            std::thread::sleep(std::time::Duration::from_micros(10));
            exit();
            assert_eq!(got, vec![r.rank() as u8; 8]);
        }
        (r.rank() as u64, r.now())
    };
    let baseline = run_on(Backend::EventLoop, p, CostModel::default(), body);
    for seed in 0..6u64 {
        let j = run_jittered(p, CostModel::default(), k, seed, 100, body);
        assert_eq!(j, baseline, "seed={seed}: run under spurious wakeups diverges");
    }
}

/// Random parameters for the ordering property.
#[derive(Debug)]
struct OrderCase {
    nprocs: usize,
    shards: usize,
    rounds: u64,
    fanout: usize,
    skew: u64,
}

#[test]
fn cross_shard_message_order_matches_event_loop() {
    if !Backend::event_loop_supported() {
        return;
    }
    flexio::sim::prop::Runner::new("cross_shard_message_order")
        .cases(24)
        .regressions(include_str!("shard_determinism.proptest-regressions"))
        .run(
            |rng: &mut XorShift64Star| OrderCase {
                nprocs: 2 + (rng.next_u64() % 9) as usize, // 2..=10
                shards: 1 + (rng.next_u64() % 8) as usize, // 1..=8
                rounds: 1 + rng.next_u64() % 6,            // 1..=6
                fanout: 1 + (rng.next_u64() % 3) as usize, // 1..=3
                skew: rng.next_u64() % 97,
            },
            |c: &OrderCase| {
                let (p, rounds, skew) = (c.nprocs, c.rounds, c.skew);
                let fanout = c.fanout.min(p - 1).max(1);
                let body = move |r: &Rank| {
                    // Seeded per-rank clock skew decorrelates dispatch
                    // order from rank order.
                    r.advance(r.rank() as u64 * skew % 61);
                    for d in 1..=fanout {
                        let dst = (r.rank() + d) % p;
                        for s in 0..rounds {
                            r.advance(skew % (7 + d as u64));
                            r.send(dst, d as u64, &[r.rank() as u8, d as u8, s as u8]);
                        }
                    }
                    let mut log = Vec::new();
                    for d in 1..=fanout {
                        let src = (r.rank() + p - d) % p;
                        for s in 0..rounds {
                            let m = r.recv(src, d as u64);
                            // Per-(src, tag) FIFO: sequence numbers must
                            // arrive in send order on every backend.
                            assert_eq!(
                                m,
                                vec![src as u8, d as u8, s as u8],
                                "rank {} saw out-of-order delivery from {src} tag {d}",
                                r.rank()
                            );
                            log.extend(m);
                        }
                    }
                    (r.now(), r.stats(), log)
                };
                let ev = run_on(Backend::EventLoop, p, CostModel::default(), body);
                let sh = run_on(Backend::Sharded(c.shards), p, CostModel::default(), body);
                assert_eq!(ev, sh, "case {c:?}: sharded run diverges from the event loop");
            },
        );
}
