//! Cross-crate integration tests: both engines, all exchange modes and
//! hint combinations must produce byte-identical, verifier-clean files.

use flexio::core::{Engine, ExchangeMode, Hints, MpiFile};
use flexio::hpio::{HpioSpec, TimeStepSpec, TypeStyle};
use flexio::io::IoMethod;
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;
use std::sync::Arc;

fn test_pfs(locking: bool, cache: bool) -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking,
        lock_expansion: true,
        client_cache: cache,
        cost: PfsCostModel::free(),
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

/// Run an HPIO collective write under `hints` and verify every stamp.
fn hpio_write_and_verify(spec: HpioSpec, style: TypeStyle, hints: Hints) {
    let pfs = test_pfs(false, false);
    {
        let pfs = Arc::clone(&pfs);
        run(spec.nprocs, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs, "hpio", hints.clone()).unwrap();
            let (disp, ftype) = spec.file_view(rank.rank(), style);
            let etype = Datatype::bytes(1);
            f.set_view(disp, &etype, &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank());
            f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
            f.close().unwrap();
        });
    }
    let img = read_file(&pfs, "hpio");
    if let Err((r, i, want, got)) = spec.verify(&img) {
        panic!("verify failed: rank {r} idx {i} want {want} got {got}");
    }
}

fn small_spec(nprocs: usize) -> HpioSpec {
    HpioSpec {
        region_size: 24,
        region_count: 17,
        region_spacing: 40,
        mem_noncontig: true,
        file_noncontig: true,
        nprocs,
    }
}

#[test]
fn hpio_flexible_succinct() {
    hpio_write_and_verify(small_spec(5), TypeStyle::Succinct, Hints::default());
}

#[test]
fn hpio_flexible_enumerated() {
    hpio_write_and_verify(small_spec(5), TypeStyle::Enumerated, Hints::default());
}

#[test]
fn hpio_romio_engine() {
    let hints = Hints { engine: Engine::Romio, ..Hints::default() };
    hpio_write_and_verify(small_spec(5), TypeStyle::Enumerated, hints);
}

#[test]
fn hpio_alltoallw_exchange() {
    let hints = Hints { exchange: ExchangeMode::Alltoallw, ..Hints::default() };
    hpio_write_and_verify(small_spec(4), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_few_aggregators_small_cb() {
    let hints = Hints {
        cb_nodes: Some(2),
        cb_buffer_size: 256,
        ..Hints::default()
    };
    hpio_write_and_verify(small_spec(6), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_naive_io_method() {
    let hints = Hints { io_method: IoMethod::Naive, ..Hints::default() };
    hpio_write_and_verify(small_spec(4), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_sieve_io_method() {
    let hints = Hints {
        io_method: IoMethod::DataSieve { buffer: 300 },
        ..Hints::default()
    };
    hpio_write_and_verify(small_spec(4), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_aligned_realms() {
    let hints = Hints { fr_alignment: Some(1024), ..Hints::default() };
    hpio_write_and_verify(small_spec(4), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_pfr() {
    let hints = Hints { persistent_file_realms: true, ..Hints::default() };
    hpio_write_and_verify(small_spec(4), TypeStyle::Succinct, hints);
}

#[test]
fn hpio_mem_contig_file_noncontig() {
    let spec = HpioSpec { mem_noncontig: false, ..small_spec(4) };
    hpio_write_and_verify(spec, TypeStyle::Succinct, Hints::default());
}

#[test]
fn hpio_mem_noncontig_file_contig() {
    let spec = HpioSpec { file_noncontig: false, ..small_spec(4) };
    hpio_write_and_verify(spec, TypeStyle::Succinct, Hints::default());
}

#[test]
fn engines_byte_identical() {
    // Same workload through both engines: identical file images.
    let spec = small_spec(6);
    let mut images = Vec::new();
    for engine in [Engine::Flexible, Engine::Romio] {
        let pfs = test_pfs(false, false);
        {
            let pfs = Arc::clone(&pfs);
            run(spec.nprocs, CostModel::free(), move |rank| {
                let hints = Hints { engine, cb_nodes: Some(3), ..Hints::default() };
                let mut f = MpiFile::open(rank, &pfs, "x", hints).unwrap();
                let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Enumerated);
                f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                let buf = spec.make_buffer(rank.rank());
                f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
                f.close().unwrap();
            });
        }
        images.push(read_file(&pfs, "x"));
    }
    assert_eq!(images[0], images[1]);
}

#[test]
fn collective_read_returns_written_data() {
    let spec = small_spec(4);
    for engine in [Engine::Flexible, Engine::Romio] {
        let pfs = test_pfs(false, false);
        let outs = run(spec.nprocs, CostModel::free(), move |rank| {
            let hints = Hints { engine, cb_buffer_size: 512, ..Hints::default() };
            let mut f = MpiFile::open(rank, &pfs, "rw", hints).unwrap();
            let (disp, ftype) = spec.file_view(rank.rank(), TypeStyle::Succinct);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank());
            f.write_all(&buf, &spec.mem_type(), spec.mem_count()).unwrap();
            let mut back = vec![0u8; buf.len()];
            f.read_all(&mut back, &spec.mem_type(), spec.mem_count()).unwrap();
            f.close().unwrap();
            (buf, back)
        });
        for (rank, (buf, back)) in outs.into_iter().enumerate() {
            // Compare only the data positions (gaps in the membuffer stay 0).
            let s = spec;
            for i in 0..s.region_count {
                for b in 0..s.region_size {
                    let pos = (i * s.unit() + b) as usize;
                    assert_eq!(buf[pos], back[pos], "engine {engine:?} rank {rank} pos {pos}");
                }
            }
        }
    }
}

#[test]
fn timestep_pattern_with_pfr_and_cache() {
    // The Fig. 7 regime: locking + client cache + PFR + aligned realms.
    let spec = TimeStepSpec {
        elem_size: 8,
        elems_per_point: 10,
        points: 16,
        steps: 4,
        nprocs: 4,
    };
    let pfs = Pfs::new(PfsConfig {
        n_osts: 2,
        stripe_size: 512,
        page_size: 64,
        locking: true,
        lock_expansion: true,
        client_cache: true,
        cost: PfsCostModel::free(),
    });
    {
        let pfs = Arc::clone(&pfs);
        run(spec.nprocs, CostModel::free(), move |rank| {
            let hints = Hints {
                persistent_file_realms: true,
                fr_alignment: Some(512),
                cb_nodes: Some(2),
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "ts", hints).unwrap();
            for t in 0..spec.steps {
                let (disp, ftype) = spec.file_view(rank.rank(), t);
                f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                let buf = spec.make_buffer(rank.rank(), t);
                let n = buf.len() as u64;
                if n > 0 {
                    f.write_all(&buf, &Datatype::bytes(n), 1).unwrap();
                } else {
                    f.write_all(&[], &Datatype::bytes(1), 0).unwrap();
                }
            }
            f.close().unwrap();
        });
    }
    let img = read_file(&pfs, "ts");
    if let Err((r, t, i, want, got)) = spec.verify(&img) {
        panic!("verify failed: rank {r} step {t} idx {i} want {want} got {got}");
    }
}

#[test]
fn timestep_pattern_all_fig7_combos() {
    let spec = TimeStepSpec {
        elem_size: 8,
        elems_per_point: 7,
        points: 8,
        steps: 3,
        nprocs: 4,
    };
    for (pfr, align) in [(false, false), (false, true), (true, false), (true, true)] {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 2,
            stripe_size: 256,
            page_size: 32,
            locking: true,
            lock_expansion: true,
            client_cache: true,
            cost: PfsCostModel::free(),
        });
        {
            let pfs = Arc::clone(&pfs);
            run(spec.nprocs, CostModel::free(), move |rank| {
                let hints = Hints {
                    persistent_file_realms: pfr,
                    fr_alignment: align.then_some(256),
                    cb_nodes: Some(2),
                    ..Hints::default()
                };
                let mut f = MpiFile::open(rank, &pfs, "ts", hints).unwrap();
                for t in 0..spec.steps {
                    let (disp, ftype) = spec.file_view(rank.rank(), t);
                    f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
                    let buf = spec.make_buffer(rank.rank(), t);
                    let n = buf.len() as u64;
                    f.write_all(&buf, &Datatype::bytes(n.max(1)), (n > 0) as u64).unwrap();
                }
                f.close().unwrap();
            });
        }
        let img = read_file(&pfs, "ts");
        if let Err(e) = spec.verify(&img) {
            panic!("pfr={pfr} align={align}: verify failed {e:?}");
        }
    }
}

#[test]
fn subarray_2d_tile_write() {
    // 4 ranks each own a quadrant of a 2D matrix.
    let rows = 16u64;
    let cols = 16u64;
    let pfs = test_pfs(false, false);
    {
        let pfs = Arc::clone(&pfs);
        run(4, CostModel::free(), move |rank| {
            let r0 = (rank.rank() as u64 / 2) * (rows / 2);
            let c0 = (rank.rank() as u64 % 2) * (cols / 2);
            let sub = Datatype::subarray_2d(rows, cols, 1, r0, c0, rows / 2, cols / 2);
            let mut f = MpiFile::open(rank, &pfs, "mat", Hints::default()).unwrap();
            f.set_view(0, &Datatype::bytes(1), &sub).unwrap();
            let n = (rows / 2) * (cols / 2);
            let data = vec![rank.rank() as u8 + 1; n as usize];
            f.write_all(&data, &Datatype::bytes(n), 1).unwrap();
            f.close().unwrap();
        });
    }
    let img = read_file(&pfs, "mat");
    assert_eq!(img.len() as u64, rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let quad = (r / 8) * 2 + c / 8;
            assert_eq!(img[(r * cols + c) as usize], quad as u8 + 1, "({r},{c})");
        }
    }
}

#[test]
fn repeated_collectives_interleave_with_independents() {
    let pfs = test_pfs(false, false);
    let pfs2 = Arc::clone(&pfs);
    run(3, CostModel::free(), move |rank| {
        let bt = Datatype::bytes(10);
        let ft = Datatype::resized(0, 30, bt.clone());
        let mut f = MpiFile::open(rank, &pfs2, "mix", Hints::default()).unwrap();
        f.set_view(rank.rank() as u64 * 10, &bt, &ft).unwrap();
        // Collective write, independent patch, collective read.
        let data = vec![rank.rank() as u8 + 10; 60];
        f.write_all(&data, &Datatype::bytes(60), 1).unwrap();
        if rank.rank() == 0 {
            f.write_at(1, &[99u8; 10], &Datatype::bytes(10), 1).unwrap();
        }
        rank.barrier();
        let mut back = vec![0u8; 60];
        f.read_all(&mut back, &Datatype::bytes(60), 1).unwrap();
        f.close().unwrap();
        if rank.rank() == 0 {
            assert_eq!(&back[10..20], &[99u8; 10]);
            assert_eq!(&back[0..10], &[10u8; 10]);
        }
    });
}
