//! Seeded workload fuzzer: the differential suite over the structured
//! scenario generator (`flexio::workload`).
//!
//! Every generated case — checkpoint N-to-1, restart with shifted rank
//! counts, many-task regions, read-heavy scans, mixed subarray/irregular
//! views — is run under four differential axes and one oracle:
//!
//! * **oracle**: the flexible engine's file image and every read-back
//!   must match the engine-free expected-image oracle (zeros past EOF);
//! * **engine vs engine**: ROMIO must land the same bytes and read-backs
//!   as the flexible engine;
//! * **zero-copy vs packed**: disabling `flexio_zero_copy` must change
//!   nothing but the staging ledger;
//! * **faulted vs clean**: the spec's transient-fault plan (with a
//!   generous retry budget) must perturb time, never data;
//! * **run-twice determinism**: an identical rerun must be bit-identical
//!   in images, read-backs, outcomes, clocks, and stats;
//! * **sharded vs sequential**: a seed-pinned sharded-pool run (2–4 host
//!   threads) must be bit-identical in *everything* to the base run.
//!
//! Uniform invariants on every run: phase buckets sum to each rank's
//! clock, `bytes_copied ≤ memcpy_bytes`, and collective outcomes agree
//! across the world. Failures shrink via the harness's greedy case
//! shrinking and are pinned in `workload_fuzz.proptest-regressions`.

use flexio::core::Engine;
use flexio::sim::prop::Runner;
use flexio::sim::XorShift64Star;
use flexio::workload::{
    check_invariants, checkpoint_spec, env_zero_copy, eq_padded, generate, generate_crash,
    many_task_spec, mixed_subarray_spec, read_scan_spec, restart_spec, run_spec,
    verify_crash_checkpoint, CrashScenario, Oracle, PhaseOp, RunConfig, RunOutcome, ScenarioKind,
    WorkloadSpec,
};

/// Run one spec through every axis and cross-check.
fn fuzz_one(spec: &WorkloadSpec) {
    let zc = env_zero_copy();
    let flexible = RunConfig { engine: Engine::Flexible, zero_copy: zc, faulted: false, shards: 0 };
    let a = run_spec(spec, flexible);
    check_invariants(&a, "flexible/clean");

    // Oracle: image and every read phase's read-backs.
    let oracle = Oracle::from_spec(spec);
    assert!(
        eq_padded(&a.image, oracle.image()),
        "flexible image diverged from the oracle (kind {:?})",
        spec.kind
    );
    for (pi, phase) in spec.phases.iter().enumerate() {
        if phase.op != PhaseOp::Read {
            continue;
        }
        for (r, plan) in phase.plans.iter().enumerate() {
            assert_eq!(
                a.phases[pi].read_backs[r],
                oracle.expected_read(plan),
                "phase {pi} rank {r}: read-back diverged from the oracle"
            );
        }
    }

    // Engine vs engine.
    let b = run_spec(spec, RunConfig { engine: Engine::Romio, ..flexible });
    check_invariants(&b, "romio/clean");
    assert!(eq_padded(&b.image, &a.image), "engines disagree on the bytes");
    for (pi, (pa, pb)) in a.phases.iter().zip(&b.phases).enumerate() {
        assert_eq!(pa.read_backs, pb.read_backs, "phase {pi}: engine read-backs differ");
        assert_eq!(pa.outcomes, pb.outcomes, "phase {pi}: engine outcomes differ");
    }

    // Zero-copy vs packed (same engine).
    let c = run_spec(spec, RunConfig { zero_copy: false, ..flexible });
    check_invariants(&c, "flexible/packed");
    assert!(eq_padded(&c.image, &a.image), "zero-copy changed the bytes on disk");
    for (pi, (pa, pc)) in a.phases.iter().zip(&c.phases).enumerate() {
        assert_eq!(pa.read_backs, pc.read_backs, "phase {pi}: zero-copy read-backs differ");
        for (r, (sa, sc)) in pa.stats.iter().zip(&pc.stats).enumerate() {
            assert!(
                sa.bytes_copied <= sc.bytes_copied || !zc,
                "phase {pi} rank {r}: zero-copy raised the staging ledger ({} > {})",
                sa.bytes_copied,
                sc.bytes_copied
            );
        }
    }

    // Faulted vs clean: retries absorb the spec's transient plan.
    let d = run_spec(spec, RunConfig { faulted: true, ..flexible });
    check_invariants(&d, "flexible/faulted");
    assert!(eq_padded(&d.image, &a.image), "faults changed the bytes on disk");
    for (pi, (pa, pd)) in a.phases.iter().zip(&d.phases).enumerate() {
        assert_eq!(pa.read_backs, pd.read_backs, "phase {pi}: faulted read-backs differ");
    }

    // Run-twice determinism: bit-identical everything.
    let e = run_spec(spec, flexible);
    assert_eq!(a, e, "identical rerun produced a different outcome");

    // Sharded vs base backend: pin a seed-derived pool width (2..=4) and
    // demand full bit-identity — images, read-backs, outcomes, clocks,
    // and stats. This is the workload-level leg of the ISSUE 10
    // determinism contract; the sim-level suites cover the rest.
    let k = 2 + (spec.fault_seed % 3) as usize;
    let f = run_spec(spec, RunConfig { shards: k, ..flexible });
    assert_eq!(a, f, "sharded pool ({k} shards) diverged from the base backend");
}

#[test]
fn workload_differential_fuzz() {
    Runner::new("workload_differential_fuzz")
        .cases(16)
        .regressions(include_str!("workload_fuzz.proptest-regressions"))
        .run(generate, fuzz_one);
}

/// The generator reaches every scenario family within a small seed
/// budget, so elevated-case CI runs always sweep all five.
#[test]
fn generator_covers_every_family() {
    let mut rng = XorShift64Star::new(0x00F1_E810);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..64 {
        seen.insert(generate(&mut rng).kind);
    }
    assert_eq!(seen.len(), ScenarioKind::ALL.len(), "families missing from {seen:?}");
}

// Directed per-family cases: fixed-shape members of each family run
// through the full differential battery even at PROPTEST_CASES=1.

#[test]
fn checkpoint_family_directed() {
    fuzz_one(&checkpoint_spec(0xC0FFEE, 4, 32, 6, 3));
}

#[test]
fn restart_family_directed() {
    // 5 writers, 3 readers over a non-divisible element count, readers
    // reaching 200 elements past the last writer's extent.
    fuzz_one(&restart_spec(0xBEEF, 5, 3, 331, 3, 200));
    // More readers than elements: trailing readers participate empty.
    fuzz_one(&restart_spec(0xBEEF + 1, 2, 7, 5, 2, 3));
}

#[test]
fn many_task_family_directed() {
    fuzz_one(&many_task_spec(0xDAB, 5, 48, 3, 100, 2));
}

#[test]
fn read_scan_family_directed() {
    fuzz_one(&read_scan_spec(0x5CA4, 4, 6, 24, 4, 3));
}

#[test]
fn mixed_family_directed() {
    fuzz_one(&mixed_subarray_spec(0x2D, 2, 3, 4, 5, 4));
    // Irregular indexed views are rng-built; pin one seed.
    let mut rng = XorShift64Star::new(0x1112);
    fuzz_one(&flexio::workload::gen::mixed_irregular_spec(&mut rng, 0x1112, 4));
}

/// The restart scenario's sharpest edge in isolation: a read phase whose
/// partition extends past the last written byte must see zeros on every
/// rank, under both engines.
#[test]
fn reads_past_last_writer_extent_see_zeros() {
    let spec = restart_spec(0xE0F, 3, 4, 64, 1, 64);
    let oracle = Oracle::from_spec(&spec);
    for engine in [Engine::Flexible, Engine::Romio] {
        let out = run_spec(&spec, RunConfig { engine, zero_copy: true, faulted: false, shards: 0 });
        let read = &out.phases[1];
        for (r, plan) in spec.phases[1].plans.iter().enumerate() {
            assert_eq!(
                read.read_backs[r],
                oracle.expected_read(plan),
                "{engine:?}: rank {r} read past EOF"
            );
        }
    }
}

/// The crash-point fuzz axis: drawn crash times, victims, world sizes,
/// clean-epoch counts, torn-header rates, and the recovery switch (both
/// positions unless `FLEXIO_CRASH_RECOVERY` pins one — the CI matrix
/// does). Each case runs the full battery in
/// `flexio::workload::verify_crash_checkpoint`: determinism, survivor
/// byte-identity masked to survivor tiles, recovery-counter agreement,
/// phase-sum through recovery, collective error agreement with recovery
/// off, and the restart family's old-or-new-never-torn read.
#[test]
fn crash_point_fuzz() {
    Runner::new("crash_point_fuzz")
        .cases(12)
        .regressions(include_str!("crash_recovery.proptest-regressions"))
        .run(generate_crash, |scn| {
            verify_crash_checkpoint(scn);
        });
}

/// The crash generator reaches both recovery positions, mid-run crash
/// times, and victims across the world within a small seed budget.
#[test]
fn crash_generator_covers_the_axes() {
    let mut rng = XorShift64Star::new(0x00F1_E810);
    let (mut on, mut off, mut entry, mut late) = (0, 0, 0, 0);
    let mut victims = std::collections::BTreeSet::new();
    for _ in 0..64 {
        let s: CrashScenario = generate_crash(&mut rng);
        if s.recovery {
            on += 1;
        } else {
            off += 1;
        }
        if s.at_ns < 1_000 {
            entry += 1;
        }
        if s.at_ns > 500_000 {
            late += 1;
        }
        victims.insert(s.victim);
    }
    if std::env::var("FLEXIO_CRASH_RECOVERY").is_err() {
        assert!(on > 0 && off > 0, "recovery coin is stuck ({on} on, {off} off)");
    }
    assert!(late > 0, "no late crash times drawn");
    assert!(victims.len() >= 3, "victims not spread: {victims:?}");
    let _ = entry;
}

/// `RunOutcome` equality is exhaustive (images, clocks, stats, outcomes,
/// read-backs), so the determinism axis is as strong as it claims.
#[test]
fn outcome_equality_is_sensitive() {
    let spec = checkpoint_spec(0xE11, 2, 16, 2, 1);
    let cfg = RunConfig { engine: Engine::Flexible, zero_copy: true, faulted: false, shards: 0 };
    let a: RunOutcome = run_spec(&spec, cfg);
    let mut b = a.clone();
    assert_eq!(a, b);
    b.phases[0].clocks[0] += 1;
    assert_ne!(a, b, "clock perturbation must break equality");
}
