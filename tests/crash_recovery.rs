//! Crash-stop recovery suite: seeded rank failures through the full
//! stack — detection at collective boundaries, two-round agreement,
//! aggregator re-election and realm re-partition over the survivors,
//! idempotent replay, and the epoch-commit old-or-new guarantee.
//!
//! The invariants under test:
//!
//! * survivors of a recovered collective end byte-identical to a
//!   fault-free run over the surviving ranks (dead state masked);
//! * `ranks_recovered` and `realms_rebalanced` agree on every survivor;
//! * each survivor's phase buckets still sum to its clock — detection
//!   timeouts are charged Comm time like any other wait;
//! * with recovery disabled, every survivor returns the *same*
//!   [`IoError::RanksFailed`] list — collective error agreement, never
//!   a hang;
//! * a crashed checkpoint generation is never observed torn: restart
//!   readers see a complete old or new epoch;
//! * crashes work in both directions (write and read collectives) and
//!   with multiple victims;
//! * the ROMIO baseline refuses crash plans up front.

use flexio::core::{Engine, Hints, IoError, MpiFile, Profile};
use flexio::pfs::{CrashSpec, FaultPlan, Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run_crashable, CostModel};
use flexio::types::Datatype;
use flexio::workload::{
    assert_writer_tiles, checkpoint_spec, read_file, run_crash_checkpoint,
    verify_crash_checkpoint, CrashScenario, Oracle, RankPlan,
};
use std::sync::Arc;

fn crash_pfs(crashes: Vec<CrashSpec>) -> Arc<Pfs> {
    Pfs::with_faults(
        PfsConfig {
            n_osts: 4,
            stripe_size: 512,
            page_size: 64,
            locking: false,
            lock_expansion: false,
            client_cache: false,
            cost: PfsCostModel::default(),
        },
        FaultPlan { crashes, ..FaultPlan::default() },
    )
}

fn recovery_hints(recovery: bool, aggs: usize) -> Hints {
    Hints {
        engine: Engine::Flexible,
        cb_nodes: Some(aggs),
        cb_buffer_size: 512,
        crash_recovery: recovery,
        watchdog_us: 200_000,
        ..Hints::default()
    }
}

fn base_scenario() -> CrashScenario {
    CrashScenario {
        seed: 0x5EED_CAFE,
        nprocs: 5,
        block: 48,
        reps: 4,
        clean_epochs: 2,
        aggs: 3,
        victim: 2,
        at_ns: 0,
        recovery: true,
        watchdog_us: 200_000,
        torn_rate: 0.0,
    }
}

/// Survivor byte-identity against an *actual* fault-free engine run over
/// the surviving ranks — not just the engine-free oracle: a shrunk world
/// of the survivors writes the same per-rank plans into a fresh PFS, and
/// every survivor-owned byte range must match the recovered image.
#[test]
fn survivors_match_a_fault_free_run_over_the_survivors() {
    let scn = base_scenario();
    let out = verify_crash_checkpoint(&scn);
    assert_eq!(out.survivors, vec![0, 1, 3, 4]);

    // Fault-free run: only the survivors, same plans, fresh PFS.
    let spec = checkpoint_spec(scn.seed, scn.nprocs, scn.block, scn.reps, 1);
    let survivor_plans: Vec<RankPlan> =
        out.survivors.iter().map(|&r| spec.phases[0].plans[r].clone()).collect();
    let gen = scn.clean_epochs;
    let pfs = crash_pfs(Vec::new());
    let plans = Arc::new(survivor_plans);
    let inner = Arc::clone(&pfs);
    let hints = recovery_hints(true, scn.aggs.min(out.survivors.len()));
    let res = run_crashable(out.survivors.len(), CostModel::default(), &[], move |rank| {
        let p = &plans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "oracle", hints.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        f.write_all_at(0, &p.step_buffer(gen), &p.memtype, p.mem_count)
    });
    assert!(res.into_iter().all(|r| r == Some(Ok(()))));
    let reference = read_file(&pfs, "oracle");

    // Every survivor-owned byte of the recovered image matches the
    // survivor-only reference run byte for byte.
    for k in 0..scn.reps {
        for &r in &out.survivors {
            let off = (k * scn.nprocs as u64 * scn.block + r as u64 * scn.block) as usize;
            let len = scn.block as usize;
            let get = |img: &[u8], i: usize| img.get(off + i).copied().unwrap_or(0);
            for i in 0..len {
                assert_eq!(
                    get(&out.committed_image, i),
                    get(&reference, i),
                    "rank {r} tile {k} byte {i}: recovered image diverged from the \
                     survivor-only fault-free run"
                );
            }
        }
    }
}

/// Sweep drawn crash times from the entry checkpoint deep into the run:
/// every case must verify, and the sweep must produce both a mid-run
/// death and a survived-past-the-end case.
#[test]
fn any_drawn_crash_time_completes_on_survivors() {
    let mut died = 0;
    let mut survived = 0;
    for at_ns in [0, 40_000, 150_000, 400_000, 900_000, u64::MAX / 2] {
        for recovery in [true, false] {
            let scn = CrashScenario { at_ns, recovery, ..base_scenario() };
            let out = verify_crash_checkpoint(&scn);
            if out.survivors.len() == scn.nprocs {
                survived += 1;
            } else {
                died += 1;
            }
        }
    }
    assert!(died >= 2, "sweep never killed the victim");
    assert!(survived >= 2, "sweep never reached past the run's end");
}

/// A crash during a collective *read* recovers too: survivors replay and
/// their buffers match the engine-free expected reads; the victim's
/// buffer is dead state.
#[test]
fn read_collective_recovers_after_a_crash() {
    let spec = checkpoint_spec(0xD00D, 4, 32, 3, 1);
    let victim = 3;
    let pfs = crash_pfs(vec![CrashSpec { rank: victim, at_ns: 0 }]);
    let plans = Arc::new(spec.phases[0].plans.clone());

    // Clean write world (no crash scheduled in it).
    let inner = Arc::clone(&pfs);
    let wplans = Arc::clone(&plans);
    let hints = recovery_hints(true, 2);
    let h2 = hints.clone();
    let res = run_crashable(4, CostModel::default(), &[], move |rank| {
        let p = &wplans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "rd", h2.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        f.write_all_at(0, &p.step_buffer(0), &p.memtype, p.mem_count)
    });
    assert!(res.into_iter().all(|r| r == Some(Ok(()))));

    // Crashing read world: the victim dies at its entry checkpoint.
    let inner = Arc::clone(&pfs);
    let rplans = Arc::clone(&plans);
    let res = run_crashable(4, CostModel::default(), &[(victim, 0)], move |rank| {
        let p = &rplans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "rd", hints.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        let mut back = vec![0u8; p.buf_len()];
        let out = f.read_all_at(0, &mut back, &p.memtype, p.mem_count);
        (out, back, rank.stats())
    });
    assert!(res[victim].is_none(), "victim must be dead");
    let oracle = Oracle::from_spec(&spec);
    for (r, res) in res.iter().enumerate() {
        if r == victim {
            continue;
        }
        let (out, back, stats) = res.as_ref().expect("survivor");
        assert_eq!(*out, Ok(()), "survivor {r} read must complete after recovery");
        assert_eq!(
            *back,
            oracle.expected_read(&spec.phases[0].plans[r]),
            "survivor {r}: replayed read diverged from the oracle"
        );
        assert_eq!(stats.ranks_recovered, 1);
    }
}

/// Recovery disabled: the collective terminates with the same agreed
/// failed-rank list on every survivor — an error, not a hang — and the
/// file keeps only whatever landed before the abort (no torn reads at
/// the epoch layer is checked by the checkpoint suite).
#[test]
fn disabled_recovery_terminates_with_collective_agreement() {
    let spec = checkpoint_spec(0xACED, 4, 32, 3, 1);
    let victim = 0;
    let pfs = crash_pfs(vec![CrashSpec { rank: victim, at_ns: 10_000 }]);
    let plans = Arc::new(spec.phases[0].plans.clone());
    let inner = Arc::clone(&pfs);
    let hints = recovery_hints(false, 2);
    let res = run_crashable(4, CostModel::default(), &[(victim, 10_000)], move |rank| {
        let p = &plans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "noheal", hints.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        f.write_all_at(0, &p.step_buffer(0), &p.memtype, p.mem_count)
    });
    assert!(res[victim].is_none());
    for (r, out) in res.iter().enumerate() {
        if r != victim {
            assert_eq!(
                out.as_ref(),
                Some(&Err(IoError::RanksFailed(vec![victim]))),
                "survivor {r} must return the agreed verdict"
            );
        }
    }
}

/// Two victims in one collective: survivors agree on the full dead set,
/// recover past both, and count both in `ranks_recovered`.
#[test]
fn multiple_victims_recover_in_one_pass() {
    let spec = checkpoint_spec(0xFA11, 6, 24, 2, 1);
    let crashes = vec![CrashSpec { rank: 1, at_ns: 0 }, CrashSpec { rank: 4, at_ns: 0 }];
    let pfs = crash_pfs(crashes.clone());
    let plans = Arc::new(spec.phases[0].plans.clone());
    let inner = Arc::clone(&pfs);
    let hints = recovery_hints(true, 3);
    let schedule: Vec<(usize, u64)> = crashes.iter().map(|c| (c.rank, c.at_ns)).collect();
    let res = run_crashable(6, CostModel::default(), &schedule, move |rank| {
        let p = &plans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "multi", hints.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        let out = f.write_all_at(0, &p.step_buffer(0), &p.memtype, p.mem_count);
        (out, rank.stats())
    });
    let mut stats = Vec::new();
    for (r, out) in res.iter().enumerate() {
        match r {
            1 | 4 => assert!(out.is_none(), "victim {r} must be dead"),
            _ => {
                let (o, s) = out.as_ref().expect("survivor");
                assert_eq!(*o, Ok(()), "survivor {r} must complete");
                assert_eq!(s.ranks_recovered, 2, "survivor {r} must count both victims");
                stats.push(s.clone());
            }
        }
    }
    // Cross-layer: the profile aggregation sees every survivor's count.
    let p = Profile::from_stats(&stats);
    assert_eq!(p.ranks_recovered_total, 2 * 4);
    // Survivor bytes are all there (victim tile ranges are dead state).
    let image = read_file(&pfs, "multi");
    for r in [0usize, 2, 3, 5] {
        let plan = &spec.phases[0].plans[r];
        let data = plan.step_buffer(0);
        for k in 0..2u64 {
            let off = (k * 6 * 24 + r as u64 * 24) as usize;
            let tile = &data[(k * 24) as usize..((k + 1) * 24) as usize];
            let img_tile: Vec<u8> =
                (0..24).map(|i| image.get(off + i).copied().unwrap_or(0)).collect();
            assert_eq!(img_tile, tile, "survivor {r} tile {k}");
        }
    }
}

/// The ROMIO baseline has no recovery protocol: opening a collective
/// with a crash-scheduling plan must fail fast with `BadHints`, not
/// silently never fire the crash.
#[test]
fn romio_rejects_crash_plans_up_front() {
    let pfs = crash_pfs(vec![CrashSpec { rank: 0, at_ns: 0 }]);
    let hints = Hints { engine: Engine::Romio, ..Hints::default() };
    let res = run_crashable(2, CostModel::default(), &[], move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "romio", hints.clone()).unwrap();
        f.set_view(0, &Datatype::bytes(1), &Datatype::bytes(4)).unwrap();
        f.write_all_at(rank.rank() as u64 * 4, &[9u8; 4], &Datatype::bytes(4), 1)
    });
    for out in res {
        assert!(
            matches!(out, Some(Err(IoError::BadHints(_)))),
            "romio + crash plan must be rejected, got {out:?}"
        );
    }
}

/// End-to-end acceptance shape: with recovery enabled, a crashed
/// aggregator rank's generation still publishes as a survivor
/// checkpoint, and a later *clean* generation over the survivors then
/// publishes on top of it — life goes on after recovery.
#[test]
fn life_goes_on_after_a_recovered_generation() {
    let scn = CrashScenario { victim: 0, ..base_scenario() }; // rank 0 is an aggregator
    let out = run_crash_checkpoint(&scn);
    assert_eq!(out.committed, Some(scn.clean_epochs));
    assert_writer_tiles(&scn, scn.clean_epochs, &out.survivors, &out.committed_image);

    // Next generation: survivors only, clean, committed via the same
    // header — the family keeps alternating slots.
    let gen = scn.clean_epochs + 1;
    let spec = checkpoint_spec(scn.seed, scn.nprocs, scn.block, scn.reps, 1);
    let survivor_plans: Vec<RankPlan> =
        out.survivors.iter().map(|&r| spec.phases[0].plans[r].clone()).collect();
    let plans = Arc::new(survivor_plans);
    let inner = crash_pfs(Vec::new());
    let hints = recovery_hints(true, 2);
    let res = run_crashable(out.survivors.len(), CostModel::default(), &[], move |rank| {
        let p = &plans[rank.rank()];
        let mut f = MpiFile::open(rank, &inner, "next", hints.clone()).unwrap();
        f.set_view(p.disp, &Datatype::bytes(1), &p.filetype).unwrap();
        f.write_all_at(0, &p.step_buffer(gen), &p.memtype, p.mem_count)
    });
    assert!(res.into_iter().all(|r| r == Some(Ok(()))));
}
