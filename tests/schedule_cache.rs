//! Exchange-schedule & flatten cache tests: replayed schedules must move
//! exactly the bytes a fresh derivation would move, the first call must
//! charge exactly what the pre-cache engine charged, and repeat calls
//! under persistent file realms must charge measurably less.

use flexio::core::{Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel, Stats, XorShift64Star};
use flexio::types::Datatype;
use std::sync::Arc;

const BLOCK: u64 = 64;

fn test_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::free(),
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

/// Per-step payload: deterministic pseudo-random bytes keyed by
/// (rank, step), so every call moves different data through the same
/// (cacheable) access pattern.
fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Checkpoint-overwrite workload: one interleaved view set once, then
/// `steps` collective writes of fresh data to the same region — the
/// steady-state pattern the schedule cache is built for. Returns each
/// rank's per-call cumulative [`Stats`] snapshots (one *before* the first
/// call, then one after each call).
fn checkpoint_write(
    pfs: &Arc<Pfs>,
    path: &str,
    nprocs: usize,
    blocks: u64,
    steps: u64,
    hints: Hints,
) -> Vec<Vec<Stats>> {
    let pfs = Arc::clone(pfs);
    let path = path.to_string();
    run(nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, &path, hints.clone()).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
        let len = (blocks * BLOCK) as usize;
        let mut snaps = vec![rank.stats()];
        for s in 0..steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
            snaps.push(rank.stats());
        }
        f.close().unwrap();
        snaps
    })
}

fn pairs_per_call(snaps: &[Stats]) -> Vec<u64> {
    snaps.windows(2).map(|w| w[1].pairs_processed - w[0].pairs_processed).collect()
}

#[test]
fn cached_replay_byte_identical_to_uncached() {
    // Same data sequence through cache-on and cache-off engines: the final
    // file images must match byte for byte (calls 2..N replay the cached
    // schedule against fresh user buffers).
    let (nprocs, blocks, steps) = (8, 24, 6);
    let image = |cache: bool| {
        let pfs = test_pfs();
        let hints = Hints { schedule_cache: cache, ..Hints::default() };
        checkpoint_write(&pfs, "ckpt", nprocs, blocks, steps, hints);
        read_file(&pfs, "ckpt")
    };
    let cached = image(true);
    let uncached = image(false);
    assert_eq!(cached.len(), uncached.len());
    assert_eq!(cached, uncached, "cached replay changed the bytes on disk");
    // And both must hold the *last* step's stamps in the right slots.
    for r in 0..nprocs {
        let want = step_data(r, steps - 1, (blocks * BLOCK) as usize);
        for b in 0..blocks {
            let off = (b * nprocs as u64 * BLOCK + r as u64 * BLOCK) as usize;
            let src = (b * BLOCK) as usize;
            assert_eq!(
                &cached[off..off + BLOCK as usize],
                &want[src..src + BLOCK as usize],
                "rank {r} block {b} corrupted"
            );
        }
    }
}

#[test]
fn first_call_pairs_match_cache_off() {
    // Call 1 is always a miss: it must charge exactly what the pre-cache
    // engine charges, on every rank (the probe is only paid on hits).
    let (nprocs, blocks) = (8, 16);
    let stats_for = |cache: bool| {
        let pfs = test_pfs();
        let hints = Hints {
            schedule_cache: cache,
            persistent_file_realms: true,
            cb_nodes: Some(4),
            ..Hints::default()
        };
        checkpoint_write(&pfs, "one", nprocs, blocks, 1, hints)
    };
    let on = stats_for(true);
    let off = stats_for(false);
    for r in 0..nprocs {
        assert_eq!(
            pairs_per_call(&on[r]),
            pairs_per_call(&off[r]),
            "rank {r}: first-call pair charges differ with the cache armed"
        );
        let last = on[r].last().unwrap();
        assert_eq!(last.schedule_cache_hits, 0, "single call cannot hit");
        assert_eq!(last.schedule_cache_misses, 1);
        let last_off = off[r].last().unwrap();
        assert_eq!(last_off.schedule_cache_hits + last_off.schedule_cache_misses, 0);
    }
}

#[test]
fn later_calls_charge_fewer_pairs_under_pfr() {
    // The tentpole claim: with persistent file realms and a fixed view,
    // calls 2..N skip the whole stream re-derivation and charge only the
    // metadata exchange plus one probe pair.
    let (nprocs, blocks, steps) = (8, 24, 5);
    let pfs = test_pfs();
    let hints = Hints {
        persistent_file_realms: true,
        cb_nodes: Some(4),
        ..Hints::default()
    };
    let snaps = checkpoint_write(&pfs, "pfr", nprocs, blocks, steps, hints);
    for (r, snap) in snaps.iter().enumerate() {
        let per_call = pairs_per_call(snap);
        assert_eq!(per_call.len(), steps as usize);
        for (i, &p) in per_call.iter().enumerate().skip(1) {
            assert!(
                p < per_call[0],
                "rank {r} call {}: {p} pairs, not below first-call {}",
                i + 1,
                per_call[0]
            );
        }
        let last = snap.last().unwrap();
        assert_eq!(last.schedule_cache_misses, 1, "rank {r}: only call 1 derives");
        assert_eq!(last.schedule_cache_hits, steps - 1, "rank {r}: calls 2..N must hit");
    }
}

#[test]
fn view_change_invalidates_schedule() {
    // set_view drops the cached schedule: a shifted view must re-derive
    // (miss), not replay stale windows.
    let nprocs = 4;
    let pfs = test_pfs();
    let stats = run(nprocs, CostModel::default(), move |rank| {
        let f_hints = Hints { persistent_file_realms: true, ..Hints::default() };
        let mut f = MpiFile::open(rank, &pfs, "mv", f_hints).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        let data = step_data(rank.rank(), 0, (4 * BLOCK) as usize);
        for step in 0..2u64 {
            let disp = step * nprocs as u64 * 4 * BLOCK + rank.rank() as u64 * BLOCK;
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            f.write_all(&data, &Datatype::bytes(data.len() as u64), 1).unwrap();
        }
        f.close().unwrap();
        rank.stats()
    });
    for s in &stats {
        assert_eq!(s.schedule_cache_hits, 0, "shifted view must not hit");
        assert_eq!(s.schedule_cache_misses, 2);
    }
}

#[test]
fn read_replay_returns_correct_bytes() {
    // The schedule is direction-agnostic: a read with the same view and
    // extent replays the schedule derived by the write, and repeated reads
    // hit again. Every replay must scatter the right bytes.
    let (nprocs, blocks) = (8, 16);
    let pfs = test_pfs();
    let hints = Hints { persistent_file_realms: true, cb_nodes: Some(4), ..Hints::default() };
    let stats = {
        let pfs = Arc::clone(&pfs);
        run(nprocs, CostModel::default(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs, "rd", hints.clone()).unwrap();
            let block = Datatype::bytes(BLOCK);
            let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
            f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
            let want = step_data(rank.rank(), 0, (blocks * BLOCK) as usize);
            f.write_all(&want, &Datatype::bytes(want.len() as u64), 1).unwrap();
            for _ in 0..2 {
                let mut got = vec![0u8; want.len()];
                f.read_all(&mut got, &Datatype::bytes(want.len() as u64), 1).unwrap();
                assert_eq!(got, want, "rank {} read back wrong bytes", rank.rank());
            }
            f.close().unwrap();
            rank.stats()
        })
    };
    for s in &stats {
        assert_eq!(s.schedule_cache_misses, 1, "only the write derives");
        assert_eq!(s.schedule_cache_hits, 2, "both reads replay the schedule");
    }
}

#[test]
fn repeated_set_view_hits_flatten_cache() {
    // Equal filetypes flatten once per rank: the second set_view of a
    // structurally equal type shares the Arc'd FlatType and charges a
    // single probe pair instead of D.
    let nprocs = 4;
    let pfs = test_pfs();
    let stats = run(nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, "fl", Hints::default()).unwrap();
        let mk = || {
            Datatype::resized(0, nprocs as u64 * BLOCK, Datatype::bytes(BLOCK))
        };
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &mk()).unwrap();
        let before = rank.stats();
        // A *new* but structurally equal Datatype value: content hit.
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &mk()).unwrap();
        let after = rank.stats();
        f.close().unwrap();
        (before, after)
    });
    for (before, after) in &stats {
        assert!(after.flatten_cache_hits > before.flatten_cache_hits, "second view must hit");
        assert_eq!(
            after.pairs_processed - before.pairs_processed,
            1,
            "a flatten hit charges one probe pair"
        );
    }
}

#[test]
fn cache_disabled_never_counts() {
    // `flexio_schedule_cache disable` reproduces the pre-cache engine:
    // no probes, no counters, same bytes (covered above), and every call
    // charges the full derivation.
    let (nprocs, blocks, steps) = (4, 8, 3);
    let pfs = test_pfs();
    let hints = Hints {
        schedule_cache: false,
        persistent_file_realms: true,
        ..Hints::default()
    };
    let snaps = checkpoint_write(&pfs, "off", nprocs, blocks, steps, hints);
    for (r, snap) in snaps.iter().enumerate() {
        let per_call = pairs_per_call(snap);
        // Under PFR with a fixed view every call does identical work.
        assert!(per_call.windows(2).all(|w| w[0] == w[1]), "rank {r}: {per_call:?}");
        let last = snap.last().unwrap();
        assert_eq!(last.schedule_cache_hits + last.schedule_cache_misses, 0);
    }
}
