//! Differential parity suite for the shared pipeline core: the ROMIO
//! baseline and the flexible engine now run their buffer cycles on the
//! same `CycleDriver` drive loops, so pipelining must be *semantically
//! invisible* on both — at every depth, in every exchange mode, with the
//! schedule cache on or off, and under injected faults:
//!
//! * pipelined ROMIO at any depth is byte-identical (file image and
//!   read-back) to the serial (depth 1) ROMIO oracle,
//! * both engines land byte-identical file images for the same workload,
//! * work counters (pairs, copies, messages, payload bytes) are
//!   depth-invariant, `pipeline_depth_used` and the PFS
//!   `nb_inflight_peak` respect the requested cap, the serial oracle
//!   hides nothing, and every rank's phase buckets sum to its clock,
//! * ROMIO at depth 1 charges *exactly* what the pre-refactor serial
//!   ROMIO loop charged, pinned number for number by harvested fixtures.

use flexio::core::{Engine, ExchangeMode, Hints, PipelineDepth};
use flexio::pfs::{FaultPlan, Pfs, PfsConfig, PfsCostModel};
use flexio::sim::prop::Runner;
use flexio::sim::{Stats, XorShift64Star};
use flexio::workload::{env_zero_copy, read_file, run_tiled, RankOutcome, TiledShape};
use std::sync::Arc;

fn timed_pfs(faults: Option<&FaultPlan>) -> Arc<Pfs> {
    let cfg = PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    };
    match faults {
        Some(plan) => Pfs::with_faults(cfg, plan.clone()),
        None => Pfs::new(cfg),
    }
}

/// One randomized parity case: a tiled collective workload plus the
/// pipeline depth, exchange mode, cache setting, and fault plan to run it
/// under — everything but the engine, which the property sweeps itself.
#[derive(Debug, Clone)]
struct Parity {
    nprocs: usize,
    /// Bytes per filetype block.
    block: u64,
    /// Filetype repetitions per collective call.
    reps: u64,
    /// Collective writes before the final collective read.
    steps: u64,
    aggs: usize,
    cb: usize,
    exchange: ExchangeMode,
    cache: bool,
    depth: PipelineDepth,
    /// `None` for a fault-free case.
    plan: Option<FaultPlan>,
}

fn random_parity(rng: &mut XorShift64Star) -> Parity {
    let nprocs = 2 + (rng.next_u64() % 7) as usize; // 2..=8
    Parity {
        nprocs,
        block: 8 * (1 + rng.next_u64() % 12), // 8..=96
        reps: 4 + rng.next_u64() % 29,        // 4..=32
        steps: 1 + rng.next_u64() % 2,
        aggs: 1 + (rng.next_u64() as usize) % nprocs,
        cb: [128, 256, 512, 1024][(rng.next_u64() % 4) as usize],
        exchange: if rng.next_u64().is_multiple_of(2) {
            ExchangeMode::Nonblocking
        } else {
            ExchangeMode::Alltoallw
        },
        cache: rng.next_u64().is_multiple_of(2),
        depth: match rng.next_u64() % 6 {
            0..=3 => PipelineDepth::Fixed(2 + (rng.next_u64() % 5) as u32), // 2..=6
            _ => PipelineDepth::Auto,
        },
        plan: if rng.next_u64().is_multiple_of(3) {
            // Modest transient rate with a generous retry budget (the
            // hints below allow 12): calls still succeed, so `unwrap`-free
            // comparison against the fault-free oracle stays simple.
            Some(FaultPlan::transient(rng.next_u64(), (rng.next_u64() % 101) as f64 / 1000.0))
        } else {
            None
        },
    }
}

/// Run `p`'s workload (`steps` collective writes, one collective read)
/// under `engine` at `depth` with the zero-copy datatype path on or off.
/// Returns the file image, every rank's outcome, and the PFS
/// nonblocking-queue high-water mark.
fn roundtrip(
    p: &Parity,
    engine: Engine,
    depth: PipelineDepth,
    zero_copy: bool,
) -> (Vec<u8>, Vec<RankOutcome>, u64) {
    let pfs = timed_pfs(p.plan.as_ref());
    let hints = Hints {
        engine,
        pipeline_depth: depth,
        cb_nodes: Some(p.aggs),
        cb_buffer_size: p.cb,
        exchange: p.exchange,
        schedule_cache: p.cache,
        zero_copy,
        io_retries: 12,
        ..Hints::default()
    };
    let shape = TiledShape { nprocs: p.nprocs, block: p.block, reps: p.reps, steps: p.steps };
    let out = run_tiled(&pfs, "parity", shape, &hints, true);
    let img = read_file(&pfs, "parity");
    (img, out, pfs.stats().nb_inflight_peak)
}

/// The cap a depth hint promises: `pipeline_depth_used` may not exceed the
/// depth, and the PFS may never see more than `depth - 1` outstanding
/// nonblocking ops from any one handle. `None` for Auto (bounded only by
/// the engine's internal ceiling).
fn depth_cap(depth: PipelineDepth) -> Option<u64> {
    match depth {
        PipelineDepth::Fixed(d) => Some(u64::from(d)),
        PipelineDepth::Auto => None,
    }
}

/// The tentpole differential property. For each random case, run BOTH
/// engines at the case's depth and at depth 1, and require that within an
/// engine pipelining changed nothing but virtual time, and that across
/// engines the bytes agree.
#[test]
fn pipelined_engines_match_their_serial_oracles() {
    Runner::new("pipelined_engines_match_their_serial_oracles")
        .cases(12)
        .regressions(include_str!("engine_pipeline_parity.proptest-regressions"))
        .run(random_parity, |p| {
            let mut images: Vec<Vec<u8>> = Vec::new();
            for engine in [Engine::Romio, Engine::Flexible] {
                let zc = env_zero_copy();
                let (img_d, out_d, peak_d) = roundtrip(p, engine, p.depth, zc);
                let (img_1, out_1, peak_1) = roundtrip(p, engine, PipelineDepth::Fixed(1), zc);
                assert_eq!(
                    img_d, img_1,
                    "{engine:?}: file image diverges from the depth-1 oracle"
                );
                assert_eq!(peak_1, 0, "{engine:?}: serial oracle queued nb ops");
                if let Some(cap) = depth_cap(p.depth) {
                    assert!(
                        peak_d <= cap.saturating_sub(1),
                        "{engine:?}: nb queue {peak_d} exceeds depth {cap} cap"
                    );
                }
                let lead = &out_d[0].2;
                for r in 0..p.nprocs {
                    let (now, d, s) = (&out_d[r].0, &out_d[r].1, &out_1[r].1);
                    assert_eq!(out_d[r].2, *lead, "{engine:?}: rank {r} outcome split");
                    assert_eq!(out_d[r].2, out_1[r].2, "{engine:?}: rank {r} outcomes");
                    assert_eq!(out_d[r].3, out_1[r].3, "{engine:?}: rank {r} read-back");
                    assert_eq!(d.pairs_processed, s.pairs_processed, "{engine:?}: rank {r} pairs");
                    assert_eq!(d.memcpy_bytes, s.memcpy_bytes, "{engine:?}: rank {r} copies");
                    assert_eq!(d.msgs_sent, s.msgs_sent, "{engine:?}: rank {r} messages");
                    assert_eq!(d.bytes_sent, s.bytes_sent, "{engine:?}: rank {r} payload");
                    assert_eq!(d.phase_ns.iter().sum::<u64>(), *now, "{engine:?}: rank {r} phase sum");
                    assert_eq!(
                        out_1[r].1.overlap_saved_ns, 0,
                        "{engine:?}: rank {r} serial oracle overlapped"
                    );
                    assert!(s.pipeline_depth_used <= 1, "{engine:?}: rank {r} oracle depth");
                    if let Some(cap) = depth_cap(p.depth) {
                        assert!(
                            d.pipeline_depth_used <= cap,
                            "{engine:?}: rank {r} depth {} over cap {cap}",
                            d.pipeline_depth_used
                        );
                    }
                }
                images.push(img_d);
            }
            assert_eq!(images[0], images[1], "engines disagree on the bytes");
        });
}

/// Zero-copy differential property: for each random case (including the
/// fault-plan cases), both engines run the same workload with
/// `flexio_zero_copy` on and off. Disabling it must reproduce the packed
/// staging path byte for byte, and zero-copy may only *remove* staging
/// copies — never add messages, pairs, or payload bytes, and never move
/// different bytes. Under `Alltoallw` the packed path already models no
/// staging copies, so there the two settings must charge identically.
#[test]
fn zero_copy_parity_with_packed_staging() {
    Runner::new("zero_copy_parity_with_packed_staging").cases(10).run(random_parity, |p| {
        for engine in [Engine::Romio, Engine::Flexible] {
            let (img_on, out_on, _) = roundtrip(p, engine, p.depth, true);
            let (img_off, out_off, _) = roundtrip(p, engine, p.depth, false);
            assert_eq!(img_on, img_off, "{engine:?}: zero-copy changed the bytes on disk");
            for r in 0..p.nprocs {
                let (now_on, on) = (&out_on[r].0, &out_on[r].1);
                let (now_off, off) = (&out_off[r].0, &out_off[r].1);
                assert_eq!(out_on[r].2, out_off[r].2, "{engine:?}: rank {r} outcome split");
                assert_eq!(out_on[r].3, out_off[r].3, "{engine:?}: rank {r} read-back");
                assert_eq!(on.pairs_processed, off.pairs_processed, "{engine:?}: rank {r} pairs");
                assert_eq!(on.msgs_sent, off.msgs_sent, "{engine:?}: rank {r} messages");
                assert_eq!(on.bytes_sent, off.bytes_sent, "{engine:?}: rank {r} payload");
                assert_eq!(
                    on.phase_ns.iter().sum::<u64>(),
                    *now_on,
                    "{engine:?}: rank {r} zero-copy phase sum"
                );
                assert_eq!(
                    off.phase_ns.iter().sum::<u64>(),
                    *now_off,
                    "{engine:?}: rank {r} packed phase sum"
                );
                assert!(
                    on.bytes_copied <= off.bytes_copied,
                    "{engine:?}: rank {r} zero-copy raised the staging ledger ({} > {})",
                    on.bytes_copied,
                    off.bytes_copied
                );
                assert!(
                    on.memcpy_bytes <= off.memcpy_bytes,
                    "{engine:?}: rank {r} zero-copy raised copy charges ({} > {})",
                    on.memcpy_bytes,
                    off.memcpy_bytes
                );
                // ROMIO ignores the exchange hint (always point-to-point
                // staging), so the copy-free Alltoallw identity is a
                // flexible-engine property only. Clocks are not compared:
                // overlapped cycles at shared OSTs make virtual time
                // schedule-order sensitive; the work counters are not.
                if engine == Engine::Flexible && matches!(p.exchange, ExchangeMode::Alltoallw) {
                    assert_eq!(
                        on.memcpy_bytes, off.memcpy_bytes,
                        "{engine:?}: rank {r} alltoallw copies"
                    );
                    assert_eq!(
                        on.bytes_copied, off.bytes_copied,
                        "{engine:?}: rank {r} alltoallw ledger"
                    );
                }
            }
        }
    });
}

/// The fixture workload every ROMIO charge fixture below runs — the same
/// geometry as `tests/pipeline_depth.rs`'s flexible-engine fixtures (4
/// ranks, 16 interleaved 64 B blocks, 2 writes + 1 read, 512 B collective
/// buffer, timed PFS), so the engines' fixtures stay comparable.
fn fixture_run(hints: Hints) -> Vec<(u64, Stats)> {
    let pfs = timed_pfs(None);
    let shape = TiledShape { nprocs: 4, block: 64, reps: 16, steps: 2 };
    run_tiled(&pfs, "fix", shape, &hints, true)
        .into_iter()
        .map(|(now, stats, results, _)| {
            assert!(results.iter().all(|r| r.is_ok()), "fixture op failed");
            (now, stats)
        })
        .collect()
}

/// Per-rank `(clock, phase buckets, hidden ns, pairs, copy bytes,
/// messages, payload bytes)`.
type ChargeRow = (u64, [u64; 3], u64, u64, u64, u64, u64);

fn assert_charges(got: &[(u64, Stats)], want: &[ChargeRow], label: &str) {
    for (r, ((now, s), (w_now, w_phase, w_saved, w_pairs, w_copy, w_msgs, w_bytes))) in
        got.iter().zip(want).enumerate()
    {
        assert_eq!(*now, *w_now, "{label}: rank {r} clock");
        assert_eq!(s.phase_ns, *w_phase, "{label}: rank {r} phase buckets");
        assert_eq!(s.overlap_saved_ns, *w_saved, "{label}: rank {r} hidden ns");
        assert_eq!(s.pairs_processed, *w_pairs, "{label}: rank {r} pairs");
        assert_eq!(s.memcpy_bytes, *w_copy, "{label}: rank {r} copy bytes");
        assert_eq!(s.msgs_sent, *w_msgs, "{label}: rank {r} messages");
        assert_eq!(s.bytes_sent, *w_bytes, "{label}: rank {r} payload bytes");
        assert_eq!(s.derive_overlap_saved_ns, 0, "{label}: rank {r} derive overlap");
    }
}

/// ROMIO's charge sequence on the fixture workload with one aggregator,
/// harvested from the pre-refactor serial loop (commit "Fault injection,
/// collective error agreement, and straggler degradation") — the trace
/// depth 1 on the shared pipeline must replay number for number.
const ROMIO_SERIAL_1AGG: [ChargeRow; 4] = [
    (4_663_928, [44_640, 2_646_464, 1_972_824], 0, 292, 19_200, 57, 3_360),
    (4_667_928, [13_536, 4_654_392, 0], 0, 100, 3_072, 49, 3_104),
    (4_671_928, [13_536, 4_658_392, 0], 0, 100, 3_072, 49, 3_104),
    (4_607_928, [13_536, 4_594_392, 0], 0, 100, 3_072, 49, 3_104),
];

/// Same, with two aggregators (ranks 0 and 2).
const ROMIO_SERIAL_2AGG: [ChargeRow; 4] = [
    (4_151_948, [29_088, 3_136_448, 986_412], 0, 196, 11_136, 53, 3_232),
    (4_151_948, [13_536, 4_138_412, 0], 0, 100, 3_072, 49, 3_104),
    (4_159_884, [29_088, 3_144_384, 986_412], 0, 196, 11_136, 53, 3_232),
    (4_147_948, [13_536, 4_134_412, 0], 0, 100, 3_072, 49, 3_104),
];

#[test]
fn romio_depth_1_replays_pre_refactor_charge_sequence() {
    for (aggs, want) in [(1usize, &ROMIO_SERIAL_1AGG), (2, &ROMIO_SERIAL_2AGG)] {
        // The fixtures replay the pre-zero-copy packed path: pin it.
        let base = Hints {
            engine: Engine::Romio,
            cb_nodes: Some(aggs),
            cb_buffer_size: 512,
            zero_copy: false,
            ..Hints::default()
        };
        let out = fixture_run(Hints {
            pipeline_depth: PipelineDepth::Fixed(1),
            ..base.clone()
        });
        assert_charges(&out, want, &format!("romio {aggs} agg depth 1"));
        // `flexio_double_buffer disable` is the same serial engine,
        // whatever the depth hint says.
        let out = fixture_run(Hints { double_buffer: false, ..base });
        assert_charges(&out, want, &format!("romio {aggs} agg no double buffer"));
    }
}

#[test]
fn romio_pipeline_hides_time_and_respects_the_cap() {
    let stats = |depth| {
        fixture_run(Hints {
            engine: Engine::Romio,
            pipeline_depth: depth,
            cb_nodes: Some(1),
            cb_buffer_size: 512,
            // Compared against the packed-path fixture constants below.
            zero_copy: false,
            ..Hints::default()
        })
    };
    for (depth, cap) in
        [(PipelineDepth::Fixed(1), 1), (PipelineDepth::Fixed(2), 2), (PipelineDepth::Fixed(4), 4)]
    {
        let out = stats(depth);
        let deepest = out.iter().map(|(_, s)| s.pipeline_depth_used).max().unwrap();
        assert!(deepest <= cap, "{depth:?} exceeded its cap: reached {deepest}");
        assert!(deepest >= 1, "{depth:?} recorded no pipeline depth at all");
        let saved: u64 = out.iter().map(|(_, s)| s.overlap_saved_ns).sum();
        if cap == 1 {
            assert_eq!(saved, 0, "serial ROMIO must hide nothing");
        } else {
            assert!(saved > 0, "{depth:?} hid no time on a cycle-rich workload");
        }
        // Work counters stay depth-invariant (also pinned by the fixtures).
        for (r, (_, s)) in out.iter().enumerate() {
            let want = ROMIO_SERIAL_1AGG[r];
            assert_eq!(s.pairs_processed, want.3, "rank {r} pairs at {depth:?}");
            assert_eq!(s.memcpy_bytes, want.4, "rank {r} copies at {depth:?}");
        }
    }
    // I/O dwarfs the exchange on this workload, so Auto must go beyond
    // classic double buffering on the aggregator — same adaptation the
    // flexible engine shows, because it IS the same code now.
    let out = stats(PipelineDepth::Auto);
    let deepest = out.iter().map(|(_, s)| s.pipeline_depth_used).max().unwrap();
    assert!(deepest > 2, "auto depth never exceeded double buffering ({deepest})");
}
