//! Property-based equivalence: for randomized workloads, the flexible
//! engine (under any hint combination) and the ROMIO baseline must
//! produce byte-identical files, and collective reads must return
//! exactly what collective writes stored.

use flexio::core::{Engine, ExchangeMode, Hints, MpiFile};
use flexio::io::IoMethod;
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;
use flexio::workload::StridedSpec;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_workload() -> impl Strategy<Value = StridedSpec> {
    (2usize..6, 1u64..48, 0u64..64, 1u64..24).prop_map(|(nprocs, block, gap, count)| {
        StridedSpec {
            nprocs,
            block,
            gap,
            count,
            disp_unit: block + gap,
        }
    })
}

fn run_write(w: &StridedSpec, hints: Hints) -> Vec<u8> {
    let pfs = Pfs::new(PfsConfig {
        n_osts: 3,
        stripe_size: 192,
        page_size: 32,
        locking: false,
        lock_expansion: true,
        client_cache: false,
        cost: PfsCostModel::free(),
    });
    {
        let pfs = Arc::clone(&pfs);
        let w = w.clone();
        run(w.nprocs, CostModel::free(), move |rank| {
            let mut f = MpiFile::open(rank, &pfs, "eq", hints.clone()).unwrap();
            f.set_view(w.disp(rank.rank()), &Datatype::bytes(1), &w.filetype()).unwrap();
            let data = w.data(rank.rank());
            f.write_all(&data, &Datatype::bytes(w.bytes_per_rank()), 1).unwrap();
            f.close();
        });
    }
    let h = pfs.open("eq", usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flexible and ROMIO engines agree byte for byte.
    #[test]
    fn engines_agree(w in arb_workload(), cb_pow in 6u32..12, aggs in 1usize..6) {
        let cb = 1usize << cb_pow;
        let base = Hints {
            cb_nodes: Some(aggs.min(w.nprocs)),
            cb_buffer_size: cb,
            ..Hints::default()
        };
        let flexible = run_write(&w, Hints { engine: Engine::Flexible, ..base.clone() });
        let romio = run_write(&w, Hints { engine: Engine::Romio, ..base });
        prop_assert_eq!(flexible, romio);
    }

    /// Hint combinations never change the bytes, only the timing.
    #[test]
    fn hints_do_not_change_bytes(
        w in arb_workload(),
        pfr in any::<bool>(),
        align in any::<bool>(),
        alltoallw in any::<bool>(),
        naive in any::<bool>(),
    ) {
        let reference = run_write(&w, Hints::default());
        let hints = Hints {
            persistent_file_realms: pfr,
            fr_alignment: align.then_some(192),
            exchange: if alltoallw { ExchangeMode::Alltoallw } else { ExchangeMode::Nonblocking },
            io_method: if naive { IoMethod::Naive } else { IoMethod::DataSieve { buffer: 128 } },
            cb_buffer_size: 256,
            ..Hints::default()
        };
        let shuffled = run_write(&w, hints);
        prop_assert_eq!(reference, shuffled);
    }

    /// write_all then read_all round-trips under random hints.
    #[test]
    fn write_read_roundtrip(w in arb_workload(), aggs in 1usize..6, romio in any::<bool>()) {
        let pfs = Pfs::new(PfsConfig {
            n_osts: 3,
            stripe_size: 192,
            page_size: 32,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::free(),
        });
        let w2 = w.clone();
        let outs = run(w.nprocs, CostModel::free(), move |rank| {
            let hints = Hints {
                engine: if romio { Engine::Romio } else { Engine::Flexible },
                cb_nodes: Some(aggs.min(w2.nprocs)),
                cb_buffer_size: 512,
                ..Hints::default()
            };
            let mut f = MpiFile::open(rank, &pfs, "rt", hints).unwrap();
            f.set_view(w2.disp(rank.rank()), &Datatype::bytes(1), &w2.filetype()).unwrap();
            let data = w2.data(rank.rank());
            f.write_all(&data, &Datatype::bytes(w2.bytes_per_rank()), 1).unwrap();
            let mut back = vec![0u8; data.len()];
            f.read_all(&mut back, &Datatype::bytes(w2.bytes_per_rank()), 1).unwrap();
            f.close();
            (data, back)
        });
        for (data, back) in outs {
            prop_assert_eq!(data, back);
        }
    }

    /// Independent I/O through a view agrees with collective I/O.
    #[test]
    fn independent_agrees_with_collective(w in arb_workload()) {
        let collective = run_write(&w, Hints::default());
        // Same pattern via independent write_at from each rank in turn.
        let pfs = Pfs::new(PfsConfig {
            n_osts: 3,
            stripe_size: 192,
            page_size: 32,
            locking: false,
            lock_expansion: true,
            client_cache: false,
            cost: PfsCostModel::free(),
        });
        {
            let pfs = Arc::clone(&pfs);
            let w = w.clone();
            run(w.nprocs, CostModel::free(), move |rank| {
                let mut f = MpiFile::open(rank, &pfs, "ind", Hints::default()).unwrap();
                f.set_view(w.disp(rank.rank()), &Datatype::bytes(1), &w.filetype()).unwrap();
                let data = w.data(rank.rank());
                f.write_at(0, &data, &Datatype::bytes(w.bytes_per_rank()), 1).unwrap();
                f.close();
            });
        }
        let h = pfs.open("ind", usize::MAX - 1);
        let mut independent = vec![0u8; h.size() as usize];
        h.read(0, 0, &mut independent);
        prop_assert_eq!(collective, independent);
    }
}
