//! Pipelined-engine tests: double buffering must never change the bytes
//! on disk or the deterministic work counters — only the virtual time.
//! The serial engine (`flexio_double_buffer disable`) must charge exactly
//! what the pre-pipeline engine charged, and the pipelined engine must
//! harvest measurable overlap on cycle-rich workloads.

use flexio::core::{ExchangeMode, Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel, Stats, XorShift64Star};
use flexio::types::Datatype;
use std::sync::Arc;

const BLOCK: u64 = 64;

fn test_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::free(),
    })
}

fn timed_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 1024,
        page_size: 64,
        locking: false,
        lock_expansion: false,
        client_cache: false,
        cost: PfsCostModel::default(),
    })
}

fn read_file(pfs: &Arc<Pfs>, path: &str) -> Vec<u8> {
    let h = pfs.open(path, usize::MAX - 1);
    let mut out = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut out).unwrap();
    out
}

fn step_data(rank: usize, step: u64, len: usize) -> Vec<u8> {
    let mut rng = XorShift64Star::new((rank as u64) << 32 | (step + 1));
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Interleaved-block workload: write `steps` collective calls of fresh
/// data, then read the last step back, returning each rank's final
/// virtual clock, stats, and read-back buffer.
fn roundtrip(
    pfs: &Arc<Pfs>,
    path: &str,
    nprocs: usize,
    blocks: u64,
    steps: u64,
    hints: Hints,
) -> Vec<(u64, Stats, Vec<u8>)> {
    let pfs = Arc::clone(pfs);
    let path = path.to_string();
    run(nprocs, CostModel::default(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs, &path, hints.clone()).unwrap();
        let block = Datatype::bytes(BLOCK);
        let ftype = Datatype::resized(0, nprocs as u64 * BLOCK, block);
        f.set_view(rank.rank() as u64 * BLOCK, &Datatype::bytes(1), &ftype).unwrap();
        let len = (blocks * BLOCK) as usize;
        for s in 0..steps {
            let data = step_data(rank.rank(), s, len);
            f.write_all(&data, &Datatype::bytes(len as u64), 1).unwrap();
        }
        let mut back = vec![0u8; len];
        f.read_all(&mut back, &Datatype::bytes(len as u64), 1).unwrap();
        f.close().unwrap();
        (rank.now(), rank.stats(), back)
    })
}

#[test]
fn pipelined_byte_identical_to_serial() {
    // Every combination of exchange mode × schedule cache: the pipelined
    // and serial engines must produce byte-identical file images, and the
    // read path must return byte-identical user buffers.
    let (nprocs, blocks, steps) = (8, 24, 3);
    for exchange in [ExchangeMode::Nonblocking, ExchangeMode::Alltoallw] {
        for cache in [true, false] {
            let image = |double_buffer: bool| {
                let pfs = test_pfs();
                let hints = Hints {
                    double_buffer,
                    exchange,
                    schedule_cache: cache,
                    cb_nodes: Some(4),
                    cb_buffer_size: 256, // several cycles per call
                    ..Hints::default()
                };
                let out = roundtrip(&pfs, "pipe", nprocs, blocks, steps, hints);
                (read_file(&pfs, "pipe"), out)
            };
            let (img_p, out_p) = image(true);
            let (img_s, out_s) = image(false);
            assert_eq!(
                img_p, img_s,
                "file images diverge ({exchange:?}, cache={cache})"
            );
            for r in 0..nprocs {
                assert_eq!(
                    out_p[r].2, out_s[r].2,
                    "rank {r} read buffers diverge ({exchange:?}, cache={cache})"
                );
                let want = step_data(r, steps - 1, (blocks * BLOCK) as usize);
                assert_eq!(out_p[r].2, want, "rank {r} read wrong bytes");
            }
        }
    }
}

#[test]
fn pipelined_counters_match_serial() {
    // Pipelining reorders virtual time, never work: pairs, copies,
    // messages, and payload bytes must be identical per rank.
    let (nprocs, blocks, steps) = (8, 24, 3);
    for exchange in [ExchangeMode::Nonblocking, ExchangeMode::Alltoallw] {
        let stats = |double_buffer: bool| {
            let pfs = test_pfs();
            let hints = Hints {
                double_buffer,
                exchange,
                cb_nodes: Some(4),
                cb_buffer_size: 256,
                ..Hints::default()
            };
            roundtrip(&pfs, "cnt", nprocs, blocks, steps, hints)
        };
        let pipelined = stats(true);
        let serial = stats(false);
        for r in 0..nprocs {
            let (p, s) = (&pipelined[r].1, &serial[r].1);
            assert_eq!(p.pairs_processed, s.pairs_processed, "rank {r} pairs ({exchange:?})");
            assert_eq!(p.memcpy_bytes, s.memcpy_bytes, "rank {r} copies ({exchange:?})");
            assert_eq!(p.msgs_sent, s.msgs_sent, "rank {r} messages ({exchange:?})");
            assert_eq!(p.bytes_sent, s.bytes_sent, "rank {r} payload ({exchange:?})");
        }
    }
}

#[test]
fn serial_engine_never_overlaps() {
    // `flexio_double_buffer disable` is the strictly serial engine: no
    // virtual time may be reported as hidden, on any rank, either
    // direction.
    let pfs = timed_pfs();
    let hints = Hints {
        double_buffer: false,
        cb_nodes: Some(4),
        cb_buffer_size: 256,
        ..Hints::default()
    };
    let out = roundtrip(&pfs, "ser", 8, 24, 3, hints);
    for (r, (_, s, _)) in out.iter().enumerate() {
        assert_eq!(s.overlap_saved_ns, 0, "rank {r} overlapped in serial mode");
    }
}

#[test]
fn pipelined_saves_time_single_aggregator() {
    // One aggregator over a timed PFS is fully deterministic (no shared
    // OST clocks between concurrent aggregators): the pipelined engine
    // must finish strictly earlier than the serial engine and report the
    // hidden time, while the per-phase buckets still sum to elapsed
    // wall-clock on the aggregator.
    let elapsed = |double_buffer: bool| {
        let pfs = timed_pfs();
        let hints = Hints {
            double_buffer,
            cb_nodes: Some(1),
            cb_buffer_size: 512, // many fill/drain cycles
            ..Hints::default()
        };
        let out = roundtrip(&pfs, "sav", 4, 16, 2, hints);
        let now_max = out.iter().map(|(now, _, _)| *now).max().unwrap();
        let saved: u64 = out.iter().map(|(_, s, _)| s.overlap_saved_ns).sum();
        (now_max, saved)
    };
    let (t_pipe, saved_pipe) = elapsed(true);
    let (t_serial, saved_serial) = elapsed(false);
    assert_eq!(saved_serial, 0);
    assert!(saved_pipe > 0, "pipelined run hid no time");
    assert!(
        t_pipe < t_serial,
        "pipelined {t_pipe} ns not faster than serial {t_serial} ns"
    );
}

#[test]
fn zero_copy_matches_packed_and_copies_strictly_less() {
    // `flexio_zero_copy` may only change which copies are modeled, never
    // the bytes or the work counters: same file image, same read-backs,
    // same pairs/messages/payload, phase buckets still summing to the
    // clock — and under the non-blocking exchange the staging ledger (and
    // the charged copy bytes) must drop strictly.
    let (nprocs, blocks, steps) = (8, 24, 3);
    let run_with = |zero_copy: bool| {
        let pfs = timed_pfs();
        let hints = Hints {
            zero_copy,
            cb_nodes: Some(4),
            cb_buffer_size: 256,
            ..Hints::default()
        };
        let out = roundtrip(&pfs, "zc", nprocs, blocks, steps, hints);
        (read_file(&pfs, "zc"), out)
    };
    let (img_on, on) = run_with(true);
    let (img_off, off) = run_with(false);
    assert_eq!(img_on, img_off, "zero-copy changed the file image");
    for r in 0..nprocs {
        let (now_on, s_on, back_on) = &on[r];
        let (now_off, s_off, back_off) = &off[r];
        assert_eq!(back_on, back_off, "rank {r} read-back diverged");
        assert_eq!(s_on.pairs_processed, s_off.pairs_processed, "rank {r} pairs");
        assert_eq!(s_on.msgs_sent, s_off.msgs_sent, "rank {r} messages");
        assert_eq!(s_on.bytes_sent, s_off.bytes_sent, "rank {r} payload");
        assert_eq!(s_on.phase_ns.iter().sum::<u64>(), *now_on, "rank {r} ON phase sum");
        assert_eq!(s_off.phase_ns.iter().sum::<u64>(), *now_off, "rank {r} OFF phase sum");
        assert!(
            s_on.bytes_copied < s_off.bytes_copied,
            "rank {r} ledger not strictly lower: {} vs {}",
            s_on.bytes_copied,
            s_off.bytes_copied
        );
        assert!(
            s_on.memcpy_bytes < s_off.memcpy_bytes,
            "rank {r} charged copies not strictly lower"
        );
        // The ledger only tracks engine staging copies; the charged total
        // additionally counts transport self-delivery, so it dominates.
        assert!(s_off.bytes_copied <= s_off.memcpy_bytes, "rank {r} ledger exceeds charges");
    }
}

#[test]
fn alltoallw_zero_copy_is_charge_identical() {
    // The alltoallw exchange already modeled pack-free sends, so flipping
    // `flexio_zero_copy` must not move a single charge there — only the
    // internal staging representation changes.
    let (nprocs, blocks, steps) = (8, 24, 2);
    let run_with = |zero_copy: bool| {
        let pfs = timed_pfs();
        let hints = Hints {
            zero_copy,
            exchange: ExchangeMode::Alltoallw,
            cb_nodes: Some(4),
            cb_buffer_size: 256,
            ..Hints::default()
        };
        let out = roundtrip(&pfs, "a2a", nprocs, blocks, steps, hints);
        (read_file(&pfs, "a2a"), out)
    };
    let (img_on, on) = run_with(true);
    let (img_off, off) = run_with(false);
    assert_eq!(img_on, img_off, "zero-copy changed the file image");
    for r in 0..nprocs {
        let (now_on, s_on, _) = &on[r];
        let (now_off, s_off, _) = &off[r];
        assert_eq!(now_on, now_off, "rank {r} clock moved");
        assert_eq!(s_on.memcpy_bytes, s_off.memcpy_bytes, "rank {r} copies");
        assert_eq!(s_on.bytes_copied, s_off.bytes_copied, "rank {r} ledger");
        assert_eq!(s_on.phase_ns, s_off.phase_ns, "rank {r} phases");
    }
}

#[test]
fn cached_replay_pipelines_identically() {
    // A schedule-cache hit must not change what the pipeline overlaps:
    // steps 2..N (replayed) still hide I/O time, and the bytes stay right.
    let pfs = timed_pfs();
    let hints = Hints {
        cb_nodes: Some(1),
        cb_buffer_size: 512,
        persistent_file_realms: true,
        ..Hints::default()
    };
    let (nprocs, blocks, steps) = (4, 16, 3);
    let out = roundtrip(&pfs, "rep", nprocs, blocks, steps, hints);
    let agg = &out[0].1; // rank 0 is the single aggregator
    assert_eq!(agg.schedule_cache_misses, 1);
    assert!(agg.schedule_cache_hits >= steps, "replays must hit");
    assert!(agg.overlap_saved_ns > 0, "replayed cycles must still overlap");
    for (r, (_, _, back)) in out.iter().enumerate() {
        let want = step_data(r, steps - 1, (blocks * BLOCK) as usize);
        assert_eq!(*back, want, "rank {r} read wrong bytes after replay");
    }
}
