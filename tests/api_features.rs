//! Integration tests for the supporting API surface: darray/subarray
//! datatypes driving collective I/O, Info-string hints, and profiling.

use flexio::core::{hints_from_info, Engine, Hints, MpiFile, Profile};
use flexio::pfs::{Pfs, PfsConfig, PfsCostModel};
use flexio::sim::{run, CostModel};
use flexio::types::{darray, subarray, Datatype, Distribution};
use std::sync::Arc;

fn free_pfs() -> Arc<Pfs> {
    Pfs::new(PfsConfig {
        n_osts: 4,
        stripe_size: 512,
        page_size: 64,
        locking: false,
        lock_expansion: true,
        client_cache: false,
        cost: PfsCostModel::free(),
    })
}

#[test]
fn darray_block_cyclic_collective_write() {
    // 8x8 matrix of 4-byte elements over a 2x2 grid, cyclic(1) rows x
    // block cols: every rank writes its partition collectively; the file
    // must be a complete, correct matrix.
    let (n, elem) = (8u64, 4u64);
    let pfs = free_pfs();
    {
        let pfs = Arc::clone(&pfs);
        run(4, CostModel::free(), move |rank| {
            let coords = [rank.rank() as u64 / 2, rank.rank() as u64 % 2];
            let dt = darray(
                &[n, n],
                &[Distribution::Cyclic(1), Distribution::Block],
                &[2, 2],
                &coords,
                elem,
            );
            let bytes = dt.size();
            let mut f = MpiFile::open(rank, &pfs, "da", Hints::default()).unwrap();
            f.set_view(0, &Datatype::bytes(elem), &dt).unwrap();
            // Element payload = rank id + 1 in every byte.
            let data = vec![rank.rank() as u8 + 1; bytes as usize];
            f.write_all(&data, &Datatype::bytes(bytes), 1).unwrap();
            f.close().unwrap();
        });
    }
    let h = pfs.open("da", 99);
    assert_eq!(h.size(), n * n * elem);
    let mut img = vec![0u8; (n * n * elem) as usize];
    h.read(0, 0, &mut img).unwrap();
    for r in 0..n {
        for c in 0..n {
            // Owner: row cyclic(1) over 2 -> r % 2; col block -> c / 4.
            let owner = (r % 2) * 2 + c / 4;
            for b in 0..elem {
                let off = ((r * n + c) * elem + b) as usize;
                assert_eq!(img[off], owner as u8 + 1, "element ({r},{c}) byte {b}");
            }
        }
    }
}

#[test]
fn subarray_3d_collective_write() {
    // 4x4x4 cube of 1-byte elements split into 8 octants over 8 ranks.
    let pfs = free_pfs();
    {
        let pfs = Arc::clone(&pfs);
        run(8, CostModel::free(), move |rank| {
            let r = rank.rank() as u64;
            let starts = [(r / 4) * 2, ((r / 2) % 2) * 2, (r % 2) * 2];
            let dt = subarray(&[4, 4, 4], &[2, 2, 2], &starts, 1);
            let mut f = MpiFile::open(rank, &pfs, "cube", Hints::default()).unwrap();
            f.set_view(0, &Datatype::bytes(1), &dt).unwrap();
            let data = vec![rank.rank() as u8 + 1; 8];
            f.write_all(&data, &Datatype::bytes(8), 1).unwrap();
            f.close().unwrap();
        });
    }
    let h = pfs.open("cube", 99);
    let mut img = vec![0u8; 64];
    h.read(0, 0, &mut img).unwrap();
    for z in 0..4u64 {
        for y in 0..4u64 {
            for x in 0..4u64 {
                let owner = (z / 2) * 4 + (y / 2) * 2 + x / 2;
                let off = (z * 16 + y * 4 + x) as usize;
                assert_eq!(img[off], owner as u8 + 1, "({z},{y},{x})");
            }
        }
    }
}

#[test]
fn info_hints_drive_collective() {
    // A full configuration expressed as ROMIO info strings.
    let hints = hints_from_info(
        Hints::default(),
        &[
            ("cb_nodes", "2"),
            ("cb_buffer_size", "4096"),
            ("romio_ds_write", "enable"),
            ("ind_wr_buffer_size", "1024"),
            ("striping_unit", "512"),
            ("flexio_pfr", "enable"),
        ],
    )
    .unwrap();
    let pfs = free_pfs();
    let pfs2 = Arc::clone(&pfs);
    run(4, CostModel::free(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs2, "info", hints.clone()).unwrap();
        let bt = Datatype::bytes(32);
        let ft = Datatype::resized(0, 128, bt.clone());
        f.set_view(rank.rank() as u64 * 32, &bt, &ft).unwrap();
        let data = vec![rank.rank() as u8 + 1; 256];
        f.write_all(&data, &Datatype::bytes(256), 1).unwrap();
        f.close().unwrap();
    });
    let h = pfs.open("info", 99);
    let mut img = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut img).unwrap();
    for (i, &b) in img.iter().enumerate() {
        assert_eq!(b, ((i / 32) % 4) as u8 + 1, "byte {i}");
    }
}

#[test]
fn profile_attributes_engine_costs() {
    // The profile must show the enumerated filetype costing more compute
    // (pair evaluations) than the succinct one — §6.2's MPE attribution.
    let profile_for = |succinct: bool| {
        let pfs = Pfs::new(PfsConfig::default());
        let stats = run(4, CostModel::default(), move |rank| {
            let hints = Hints { cb_nodes: Some(2), ..Hints::default() };
            let mut f = MpiFile::open(rank, &pfs, "p", hints).unwrap();
            let region = 32u64;
            let stride = 4 * 128i64;
            let ft = if succinct {
                Datatype::resized(0, 512, Datatype::bytes(region))
            } else {
                Datatype::hvector(256, 1, stride, Datatype::bytes(region))
            };
            f.set_view(rank.rank() as u64 * 128, &Datatype::bytes(1), &ft).unwrap();
            let data = vec![1u8; (region * 256) as usize];
            f.write_all(&data, &Datatype::bytes(region * 256), 1).unwrap();
            f.close().unwrap();
            rank.stats()
        });
        Profile::from_stats(&stats)
    };
    let succinct = profile_for(true);
    let enumerated = profile_for(false);
    assert!(
        enumerated.pairs_total > succinct.pairs_total * 2,
        "enumerated {} vs succinct {}",
        enumerated.pairs_total,
        succinct.pairs_total
    );
    assert!(enumerated.compute_ns_max > succinct.compute_ns_max);
    // Both moved the same data.
    assert!(succinct.bytes_sent_total > 0);
    assert!(!succinct.summary().is_empty());
}

#[test]
fn set_size_and_preallocate_are_collective() {
    let pfs = free_pfs();
    let pfs2 = Arc::clone(&pfs);
    run(3, CostModel::free(), move |rank| {
        let mut f = MpiFile::open(rank, &pfs2, "sz", Hints::default()).unwrap();
        let bt = Datatype::bytes(8);
        f.set_view(0, &bt, &bt).unwrap();
        if rank.rank() == 0 {
            f.write_at(0, &[1u8; 64], &Datatype::bytes(64), 1).unwrap();
        }
        rank.barrier();
        f.preallocate(256);
        assert_eq!(f.size(), 256);
        // Keep the next collective's rank-0 truncate from racing the
        // other ranks' size check above (real threads, shared metadata).
        rank.barrier();
        f.set_size(32);
        assert_eq!(f.size(), 32);
        // Reads past the new EOF return zeros on every rank.
        let mut buf = vec![9u8; 64];
        f.read_at(0, &mut buf, &Datatype::bytes(64), 1).unwrap();
        assert_eq!(&buf[..32], &[1u8; 32]);
        assert_eq!(&buf[32..], &[0u8; 32]);
        f.close().unwrap();
    });
}

#[test]
fn engines_agree_on_darray_pattern() {
    let images: Vec<Vec<u8>> = [Engine::Flexible, Engine::Romio]
        .into_iter()
        .map(|engine| {
            let pfs = free_pfs();
            {
                let pfs = Arc::clone(&pfs);
                run(4, CostModel::free(), move |rank| {
                    let coords = [rank.rank() as u64 / 2, rank.rank() as u64 % 2];
                    let dt = darray(
                        &[8, 8],
                        &[Distribution::Cyclic(2), Distribution::Cyclic(1)],
                        &[2, 2],
                        &coords,
                        2,
                    );
                    let hints = Hints { engine, cb_nodes: Some(2), ..Hints::default() };
                    let mut f = MpiFile::open(rank, &pfs, "x", hints).unwrap();
                    f.set_view(0, &Datatype::bytes(2), &dt).unwrap();
                    let n = dt.size();
                    let data: Vec<u8> =
                        (0..n).map(|i| (rank.rank() as u64 * 60 + i % 59) as u8).collect();
                    f.write_all(&data, &Datatype::bytes(n), 1).unwrap();
                    f.close().unwrap();
                });
            }
            let h = pfs.open("x", 99);
            let mut img = vec![0u8; h.size() as usize];
            h.read(0, 0, &mut img).unwrap();
            img
        })
        .collect();
    assert_eq!(images[0], images[1]);
    assert_eq!(images[0].len(), 128);
}
