//! # flexio — a flexible MPI collective I/O implementation (CLUSTER 2006)
//!
//! Facade crate re-exporting the full stack:
//!
//! * [`types`] — MPI derived datatypes, flattening, file views;
//! * [`sim`] — the in-process message-passing runtime with virtual time;
//! * [`pfs`] — the striped parallel file system simulator (Lustre-like);
//! * [`io`] — independent I/O methods (data sieving, naive, conditional);
//! * [`core`] — the collective I/O layer: `MpiFile`, hints, file realms,
//!   the flexible engine and the ROMIO baseline;
//! * [`hpio`] — the HPIO benchmark generator and the paper's evaluation
//!   workloads;
//! * [`workload`] — the seeded structured workload generator: scenario
//!   specs (checkpoint, restart, many-task, scans, mixed views), their
//!   materialization, and the expected-image oracle.
//!
//! ## Quickstart
//!
//! ```
//! use flexio::core::{Hints, MpiFile};
//! use flexio::pfs::{Pfs, PfsConfig};
//! use flexio::sim::{run, CostModel};
//! use flexio::types::Datatype;
//!
//! let pfs = Pfs::new(PfsConfig::default());
//! let nprocs = 4;
//! run(nprocs, CostModel::default(), |rank| {
//!     let mut f = MpiFile::open(rank, &pfs, "demo", Hints::default()).unwrap();
//!     // Interleave 1 KiB blocks across ranks.
//!     let block = Datatype::bytes(1024);
//!     let ftype = Datatype::resized(0, nprocs as u64 * 1024, block.clone());
//!     f.set_view(rank.rank() as u64 * 1024, &block, &ftype).unwrap();
//!     let data = vec![rank.rank() as u8; 8192];
//!     f.write_all(&data, &Datatype::bytes(8192), 1).unwrap();
//!     let mut back = vec![0u8; 8192];
//!     f.read_all(&mut back, &Datatype::bytes(8192), 1).unwrap();
//!     assert_eq!(back, data);
//!     f.close();
//! });
//! ```

#![warn(missing_docs)]

pub use flexio_core as core;
pub use flexio_hpio as hpio;
pub use flexio_io as io;
pub use flexio_pfs as pfs;
pub use flexio_sim as sim;
pub use flexio_types as types;
pub use flexio_workload as workload;
