//! Climate-style checkpointing: the paper's Fig. 6 pattern. A fixed grid
//! of multi-variable data points is written one time step at a time, with
//! all time slices of a point kept together in the file — the layout a
//! higher-level library such as NetCDF would generate. Persistent file
//! realms plus stripe-aligned realm boundaries keep the Lustre-like lock
//! manager quiet across the whole run (§6.4).
//!
//! Run with: `cargo run --release --example climate_checkpoint`

use flexio::core::{Hints, MpiFile};
use flexio::hpio::TimeStepSpec;
use flexio::io::IoMethod;
use flexio::pfs::{Pfs, PfsConfig};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;

fn main() {
    let spec = TimeStepSpec {
        elem_size: 32,        // one variable = 32 bytes
        elems_per_point: 100, // 100 variables per grid point
        points: 512,          // grid points
        steps: 16,            // time steps (one collective write each)
        nprocs: 16,
    };
    let stripe = 512 << 10;
    let pfs = Pfs::new(PfsConfig {
        stripe_size: stripe,
        page_size: 4096,
        locking: true,
        lock_expansion: true,
        client_cache: true, // write-back caching: the PFR win
        ..PfsConfig::default()
    });

    let pfs2 = pfs.clone();
    let times = run(spec.nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            persistent_file_realms: true,
            fr_alignment: Some(stripe),
            cb_nodes: Some(spec.nprocs / 2), // half the clients aggregate
            io_method: IoMethod::DataSieve { buffer: 512 << 10 },
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs2, "climate.nc", hints).unwrap();
        let t0 = rank.now();
        for t in 0..spec.steps {
            let (disp, ftype) = spec.file_view(rank.rank(), t);
            f.set_view(disp, &Datatype::bytes(1), &ftype).unwrap();
            let buf = spec.make_buffer(rank.rank(), t);
            let n = buf.len() as u64;
            f.write_all(&buf, &Datatype::bytes(n.max(1)), (n > 0) as u64).unwrap();
        }
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        rank.allreduce_max(elapsed)
    });

    // Verify every byte of every time step against the stamps.
    let h = pfs.open("climate.nc", usize::MAX - 1);
    let mut img = vec![0u8; h.size() as usize];
    h.read(0, 0, &mut img).unwrap();
    spec.verify(&img).expect("file verification");

    let total = spec.bytes_per_step() * spec.steps;
    println!(
        "wrote {} time steps x {:.2} MiB in {:.1} ms (virtual)",
        spec.steps,
        spec.bytes_per_step() as f64 / (1 << 20) as f64,
        times[0] as f64 / 1e6
    );
    println!(
        "aggregate bandwidth: {:.2} MB/s",
        total as f64 / (times[0] as f64 / 1e9) / 1e6
    );
    let s = pfs.stats();
    println!(
        "lock traffic: {} grants, {} revocations (persistent aligned realms keep this flat)",
        s.lock_grants, s.lock_revocations
    );
    println!("verification: OK ({} bytes)", img.len());
}
