//! Quickstart: four ranks collectively write an interleaved file and read
//! it back, printing per-rank timing and the file-system statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use flexio::core::{Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;

fn main() {
    let nprocs = 4;
    let block = 64 * 1024u64; // 64 KiB blocks
    let nblocks = 16u64;

    // A simulated Lustre-like file system: 8 OSTs, 2 MiB stripes.
    let pfs = Pfs::new(PfsConfig::default());

    let pfs2 = pfs.clone();
    let times = run(nprocs, CostModel::default(), move |rank| {
        // Open collectively, with default hints (flexible engine,
        // conditional data sieving, every rank an aggregator).
        let mut file = MpiFile::open(rank, &pfs2, "quickstart.dat", Hints::default()).unwrap();

        // File view: rank r owns every r-th block of the file.
        let blocktype = Datatype::bytes(block);
        let filetype = Datatype::resized(0, nprocs as u64 * block, blocktype.clone());
        file.set_view(rank.rank() as u64 * block, &blocktype, &filetype).unwrap();

        // Write nblocks blocks, stamped with the rank id.
        let data: Vec<u8> = (0..block * nblocks)
            .map(|i| (rank.rank() as u64 * 64 + i % 191) as u8)
            .collect();
        let t0 = rank.now();
        file.write_all(&data, &Datatype::bytes(block * nblocks), 1).unwrap();
        let write_ns = rank.now() - t0;

        // Read it back through the same view and verify.
        let mut back = vec![0u8; data.len()];
        let t1 = rank.now();
        file.read_all(&mut back, &Datatype::bytes(block * nblocks), 1).unwrap();
        let read_ns = rank.now() - t1;
        assert_eq!(back, data, "read-back mismatch on rank {}", rank.rank());

        file.close().unwrap();
        (write_ns, read_ns)
    });

    let total = block * nblocks * nprocs as u64;
    for (r, (w, rd)) in times.iter().enumerate() {
        println!(
            "rank {r}: write {:6.2} ms  read {:6.2} ms",
            *w as f64 / 1e6,
            *rd as f64 / 1e6
        );
    }
    let worst_w = times.iter().map(|t| t.0).max().unwrap();
    println!(
        "aggregate write bandwidth: {:.1} MB/s over {} MiB",
        total as f64 / (worst_w as f64 / 1e9) / 1e6,
        total >> 20
    );
    let s = pfs.stats();
    println!(
        "file system: {} OST requests, {} seeks, {} bytes written",
        s.ost_requests, s.seeks, s.bytes_written
    );
}
