//! Tiled matrix I/O: a 2-D array is decomposed into tiles, one per rank,
//! and written collectively with subarray datatypes — the canonical
//! MPI-IO example. Demonstrates that the same `write_all` call handles
//! strided row accesses efficiently, and compares the two engines.
//!
//! Run with: `cargo run --release --example tiled_matrix`

use flexio::core::{Engine, Hints, MpiFile};
use flexio::pfs::{Pfs, PfsConfig};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;

fn main() {
    // 1024 x 1024 matrix of 8-byte elements, 2 x 2 process grid.
    let (rows, cols, elem) = (1024u64, 1024u64, 8u64);
    let grid = 2u64;
    let nprocs = (grid * grid) as usize;
    let (trows, tcols) = (rows / grid, cols / grid);

    for engine in [Engine::Flexible, Engine::Romio] {
        let pfs = Pfs::new(PfsConfig::default());
        let pfs2 = pfs.clone();
        let times = run(nprocs, CostModel::default(), move |rank| {
            let (pr, pc) = (rank.rank() as u64 / grid, rank.rank() as u64 % grid);
            let sub = Datatype::subarray_2d(
                rows,
                cols,
                elem,
                pr * trows,
                pc * tcols,
                trows,
                tcols,
            );
            let hints = Hints { engine, cb_nodes: Some(2), ..Hints::default() };
            let mut f = MpiFile::open(rank, &pfs2, "matrix.bin", hints).unwrap();
            f.set_view(0, &Datatype::bytes(elem), &sub).unwrap();

            // Tile contents: rank id in every element's first byte.
            let tile_bytes = trows * tcols * elem;
            let data: Vec<u8> = (0..tile_bytes)
                .map(|i| if i % elem == 0 { rank.rank() as u8 + 1 } else { 0xEE })
                .collect();
            let t0 = rank.now();
            f.write_all(&data, &Datatype::bytes(tile_bytes), 1).unwrap();
            let elapsed = rank.now() - t0;
            f.close().unwrap();
            rank.allreduce_max(elapsed)
        });

        // Spot-check the four quadrants.
        let h = pfs.open("matrix.bin", usize::MAX - 1);
        for (r, c, want) in [(0, 0, 1u8), (0, cols - 1, 2), (rows - 1, 0, 3), (rows - 1, cols - 1, 4)]
        {
            let mut b = [0u8; 1];
            h.read(0, (r * cols + c) * elem, &mut b).unwrap();
            assert_eq!(b[0], want, "element ({r},{c})");
        }
        let total = rows * cols * elem;
        println!(
            "{engine:?}: {} MiB matrix in {:.1} ms -> {:.1} MB/s",
            total >> 20,
            times[0] as f64 / 1e6,
            total as f64 / (times[0] as f64 / 1e9) / 1e6
        );
    }
}
