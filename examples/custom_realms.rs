//! Plugging in a custom file-realm assigner — the extension point §5.2 of
//! the paper motivates: "one can easily plug in a new optimization
//! function to determine the file realms in a completely different
//! scheme". Here we build a topology-aware assigner that gives aggregators
//! sharing an "I/O node" adjacent realms (the paper's BG/L example), and
//! compare it with the built-in assigners on a clustered workload.
//!
//! Run with: `cargo run --release --example custom_realms`

use flexio::core::{
    AssignCtx, BalancedLoad, EvenAar, FileRealm, Hints, MpiFile, RealmAssigner,
};
use flexio::pfs::{Pfs, PfsConfig};
use flexio::sim::{run, CostModel};
use flexio::types::Datatype;
use std::sync::Arc;

/// Aggregators that share an I/O node get adjacent file realms, improving
/// cache locality on the I/O node (§5.2's BG/L scenario). The realms are
/// the same even split, but *permuted* so that node-mates are neighbours.
#[derive(Debug)]
struct IoNodeAware {
    aggs_per_node: usize,
}

impl RealmAssigner for IoNodeAware {
    fn assign(&self, ctx: &AssignCtx<'_>) -> Vec<FileRealm> {
        let (lo, hi) = ctx.aar;
        let a = ctx.n_aggregators as u64;
        let len = hi - lo;
        // Even boundaries, but realm k is handed to the aggregator whose
        // (node, slot) ordering puts node-mates on consecutive chunks.
        let mut order: Vec<usize> = (0..ctx.n_aggregators).collect();
        order.sort_by_key(|&i| (i % self.aggs_per_node, i / self.aggs_per_node));
        let mut realms = vec![FileRealm::contiguous(0, 0); ctx.n_aggregators];
        for (chunk, &agg) in order.iter().enumerate() {
            let b0 = lo + len * chunk as u64 / a;
            let b1 = lo + len * (chunk as u64 + 1) / a;
            realms[agg] = FileRealm::contiguous(b0, b1);
        }
        realms
    }

    fn name(&self) -> &'static str {
        "io-node-aware"
    }
}

fn time_with(assigner: Arc<dyn RealmAssigner>, nprocs: usize) -> u64 {
    let pfs = Pfs::new(PfsConfig::default());
    let out = run(nprocs, CostModel::default(), move |rank| {
        let hints = Hints {
            realm_assigner: Some(Arc::clone(&assigner)),
            cb_nodes: Some(nprocs / 2),
            ..Hints::default()
        };
        let mut f = MpiFile::open(rank, &pfs, "custom", hints).unwrap();
        // Clustered workload: each rank writes a 256 KiB block at the
        // front of the file; rank 0 adds a straggler byte at 256 MiB.
        let block: u64 = 256 << 10;
        let bt = Datatype::bytes(1);
        let t0;
        if rank.rank() == 0 {
            let ft = Datatype::hindexed(vec![(0, block), (256 << 20, 1)], Datatype::bytes(1));
            f.set_view(0, &bt, &ft).unwrap();
            let data = vec![1u8; block as usize + 1];
            t0 = rank.now();
            f.write_all(&data, &Datatype::bytes(block + 1), 1).unwrap();
        } else {
            f.set_view(rank.rank() as u64 * block, &bt, &Datatype::bytes(block)).unwrap();
            let data = vec![1u8; block as usize];
            t0 = rank.now();
            f.write_all(&data, &Datatype::bytes(block), 1).unwrap();
        }
        let elapsed = rank.now() - t0;
        f.close().unwrap();
        rank.allreduce_max(elapsed)
    });
    out[0]
}

fn main() {
    let nprocs = 8;
    println!("clustered write, {nprocs} ranks, 4 aggregators:");
    for (name, assigner) in [
        ("even-aar (ROMIO default)", Arc::new(EvenAar) as Arc<dyn RealmAssigner>),
        ("balanced-load (§7)", Arc::new(BalancedLoad)),
        ("io-node-aware (custom)", Arc::new(IoNodeAware { aggs_per_node: 2 })),
    ] {
        let ns = time_with(assigner, nprocs);
        println!("  {name:28} {:8.2} ms", ns as f64 / 1e6);
    }
    println!("\nThe balanced assigner routes all clusters to distinct aggregators;");
    println!("the even split funnels everything through aggregator 0 because the");
    println!("straggler byte stretches the aggregate access region 1000x.");
}
