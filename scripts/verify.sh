#!/usr/bin/env sh
# Tier-1 verification: build + test, fully offline (no external crates).
# Run from the repository root: sh scripts/verify.sh
#
# --thorough additionally re-runs the test suite with 512 property-test
# cases per property (the in-repo harness in flexio_sim::prop honours
# PROPTEST_CASES), for a nightly-ish deeper sweep.
set -eu

cd "$(dirname "$0")/.."

THOROUGH=0
for arg in "$@"; do
  case "$arg" in
    --thorough) THOROUGH=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q --release --offline =="
cargo test -q --release --offline

if [ "$THOROUGH" = 1 ]; then
  echo "== PROPTEST_CASES=512 cargo test -q --release --offline (property sweep) =="
  PROPTEST_CASES=512 cargo test -q --release --offline

  # Chaos sweep: the fault-injection suite with an explicitly pinned
  # base seed, so a failure here reproduces verbatim from the log.
  # Override FLEXIO_PROP_SEED / PROPTEST_CASES in the environment to
  # explore a different slice of the fault space.
  echo "== chaos sweep (tests/fault_injection.rs) =="
  FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    PROPTEST_CASES="${PROPTEST_CASES:-512}" \
    cargo test -q --release --offline --test fault_injection

  # Differential engine-parity sweep: pipelined flexible AND ROMIO runs
  # against their depth-1 serial oracles on the shared pipeline core,
  # same pinned seed discipline as the chaos sweep.
  echo "== engine parity sweep (tests/engine_pipeline_parity.rs) =="
  FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    PROPTEST_CASES="${PROPTEST_CASES:-512}" \
    cargo test -q --release --offline --test engine_pipeline_parity

  # Zerocopy leg: the same parity + chaos sweeps with the packed staging
  # path forced (`flexio_zero_copy` off), same seeds — both sides of the
  # hint must hold every invariant. The zero-copy side is the default
  # above, so only the off side needs a separate pass.
  echo "== zerocopy-off sweep (parity + chaos, FLEXIO_ZERO_COPY=disable) =="
  FLEXIO_ZERO_COPY=disable \
    FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    PROPTEST_CASES="${PROPTEST_CASES:-512}" \
    cargo test -q --release --offline --test engine_pipeline_parity --test fault_injection

  # Workload-fuzz leg: the seeded scenario fuzzer (five workload
  # families x oracle/engine/zero-copy/fault/determinism axes), same
  # pinned seed discipline; a red case prints a `cc <seed>` line (plus
  # its shrunk `s<level>` form) to pin in
  # tests/workload_fuzz.proptest-regressions.
  echo "== workload fuzz sweep (tests/workload_fuzz.rs) =="
  FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    PROPTEST_CASES="${PROPTEST_CASES:-512}" \
    cargo test -q --release --offline --test workload_fuzz

  echo "== workload fuzz sweep, packed path (FLEXIO_ZERO_COPY=disable) =="
  FLEXIO_ZERO_COPY=disable \
    FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    PROPTEST_CASES="${PROPTEST_CASES:-512}" \
    cargo test -q --release --offline --test workload_fuzz

  # Crash-recovery leg: the directed crash suite, then the crash-point
  # fuzz axis with the recovery coin pinned to each side in turn, so
  # both positions of `flexio_crash_recovery` sweep the identical
  # crash-point / victim / torn-rate case list under the pinned seed.
  echo "== crash-recovery directed suite (tests/crash_recovery.rs) =="
  FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
    cargo test -q --release --offline --test crash_recovery

  for pos in enable disable; do
    echo "== crash-point fuzz sweep (FLEXIO_CRASH_RECOVERY=$pos) =="
    FLEXIO_CRASH_RECOVERY="$pos" \
      FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
      PROPTEST_CASES="${PROPTEST_CASES:-512}" \
      cargo test -q --release --offline --test workload_fuzz crash_point_fuzz
  done

  # Sharded-pool leg: route every `Backend::from_env` world in the
  # backend-sensitive suites onto the pool at two widths (an even and an
  # odd one) and demand the full determinism battery holds. Specific
  # --test targets only: unit tests assume an unmutated environment.
  for k in 4 7; do
    echo "== sharded-pool sweep (FLEXIO_SIM_SHARDS=$k) =="
    FLEXIO_SIM_SHARDS="$k" \
      FLEXIO_PROP_SEED="${FLEXIO_PROP_SEED:-0xf1e810}" \
      PROPTEST_CASES="${PROPTEST_CASES:-512}" \
      cargo test -q --release --offline \
        --test sim_backend_parity --test shard_determinism --test workload_fuzz
  done

  # Scale leg: the 4096-rank (event-loop) and 16384-rank (sharded pool)
  # collective write/read smokes (byte-identity + phase-sum invariants)
  # and the host_scale sanity check (the pool must stay within the
  # livelock-guard bound of the sequential loop).
  echo "== 4096/16384-rank scale smoke (tests/scale_smoke.rs, ignored set) =="
  cargo test -q --release --offline --test scale_smoke -- --ignored

  echo "== host_scale sanity (--check) =="
  cargo run --release --offline -p flexio-bench --bin host_scale -- --check
fi

echo "== tier-1 verification passed =="
