#!/usr/bin/env sh
# Tier-1 verification: build + test, fully offline (no external crates).
# Run from the repository root: sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q --release --offline =="
cargo test -q --release --offline

echo "== tier-1 verification passed =="
