#!/usr/bin/env sh
# Tier-1 verification: build + test, fully offline (no external crates).
# Run from the repository root: sh scripts/verify.sh
#
# --thorough additionally re-runs the test suite with 512 property-test
# cases per property (the in-repo harness in flexio_sim::prop honours
# PROPTEST_CASES), for a nightly-ish deeper sweep.
set -eu

cd "$(dirname "$0")/.."

THOROUGH=0
for arg in "$@"; do
  case "$arg" in
    --thorough) THOROUGH=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q --release --offline =="
cargo test -q --release --offline

if [ "$THOROUGH" = 1 ]; then
  echo "== PROPTEST_CASES=512 cargo test -q --release --offline (property sweep) =="
  PROPTEST_CASES=512 cargo test -q --release --offline
fi

echo "== tier-1 verification passed =="
